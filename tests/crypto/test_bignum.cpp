#include "crypto/bignum.hpp"

#include <gtest/gtest.h>

namespace hermes::crypto {
namespace {

TEST(BigUint, ZeroProperties) {
  const BigUint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_u64(), 0u);
}

TEST(BigUint, U64RoundTrip) {
  const BigUint v(0x0123456789abcdefULL);
  EXPECT_EQ(v.to_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(v.to_hex(), "123456789abcdef");
  EXPECT_EQ(v.bit_length(), 57u);
}

TEST(BigUint, HexRoundTrip) {
  const std::string hex = "deadbeefcafebabe0123456789abcdef42";
  EXPECT_EQ(BigUint::from_hex(hex).to_hex(), hex);
}

TEST(BigUint, BytesRoundTrip) {
  const Bytes b{0x01, 0x00, 0xff, 0x80};
  const BigUint v = BigUint::from_bytes_be(b);
  EXPECT_EQ(v.to_bytes_be(), b);
  EXPECT_EQ(v.to_u64(), 0x0100ff80u);
}

TEST(BigUint, PaddedBytes) {
  const BigUint v(0xabcd);
  const Bytes padded = v.to_bytes_be_padded(6);
  EXPECT_EQ(padded, (Bytes{0, 0, 0, 0, 0xab, 0xcd}));
  EXPECT_EQ(BigUint::from_bytes_be(padded), v);
}

TEST(BigUint, AdditionWithCarryChains) {
  const BigUint a = BigUint::from_hex("ffffffffffffffffffffffffffffffff");
  const BigUint one(1);
  EXPECT_EQ((a + one).to_hex(), "100000000000000000000000000000000");
}

TEST(BigUint, SubtractionWithBorrow) {
  const BigUint a = BigUint::from_hex("100000000000000000000000000000000");
  const BigUint one(1);
  EXPECT_EQ((a - one).to_hex(), "ffffffffffffffffffffffffffffffff");
}

TEST(BigUint, AddSubInverse) {
  Rng rng(100);
  for (int i = 0; i < 50; ++i) {
    const BigUint a = BigUint::random_bits(rng, 200);
    const BigUint b = BigUint::random_bits(rng, 150);
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST(BigUint, MultiplicationKnownValue) {
  const BigUint a = BigUint::from_hex("ffffffff");
  EXPECT_EQ((a * a).to_hex(), "fffffffe00000001");
}

TEST(BigUint, MultiplicationCommutativeAndDistributive) {
  Rng rng(101);
  for (int i = 0; i < 20; ++i) {
    const BigUint a = BigUint::random_bits(rng, 120);
    const BigUint b = BigUint::random_bits(rng, 90);
    const BigUint c = BigUint::random_bits(rng, 70);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(BigUint, ShiftRoundTrip) {
  Rng rng(102);
  const BigUint a = BigUint::random_bits(rng, 100);
  for (std::size_t s : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ((a << s) >> s, a);
  }
}

TEST(BigUint, DivModIdentity) {
  Rng rng(103);
  for (int i = 0; i < 40; ++i) {
    const BigUint a = BigUint::random_bits(rng, 256);
    const BigUint b = BigUint::random_bits(rng, 1 + i % 200);
    const auto dm = BigUint::divmod(a, b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_LT(dm.remainder, b);
  }
}

TEST(BigUint, DivModSingleLimbFastPath) {
  const BigUint a = BigUint::from_hex("123456789abcdef0123456789abcdef");
  const BigUint b(0x12345);
  const auto dm = BigUint::divmod(a, b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
}

TEST(BigUint, DivByLargerIsZero) {
  const BigUint a(5);
  const BigUint b(7);
  EXPECT_TRUE((a / b).is_zero());
  EXPECT_EQ(a % b, a);
}

TEST(BigUint, PowmodKnownValues) {
  // 3^100 mod 101 = 1 (Fermat).
  EXPECT_EQ(BigUint::powmod(BigUint(3), BigUint(100), BigUint(101)), BigUint(1));
  // 2^10 mod 1000 = 24.
  EXPECT_EQ(BigUint::powmod(BigUint(2), BigUint(10), BigUint(1000)), BigUint(24));
}

TEST(BigUint, PowmodFermatRandomBase) {
  Rng rng(104);
  const BigUint p = BigUint::from_hex("ffffffffffffffc5");  // 2^64 - 59, prime
  for (int i = 0; i < 10; ++i) {
    const BigUint a = BigUint::random_below(rng, p - BigUint(2)) + BigUint(1);
    EXPECT_EQ(BigUint::powmod(a, p - BigUint(1), p), BigUint(1));
  }
}

TEST(BigUint, MontgomeryPowmodMatchesReferenceOddModuli) {
  // powmod uses Montgomery CIOS for odd multi-limb moduli; cross-check
  // against the definitional square-and-multiply with divmod reduction.
  Rng rng(112);
  for (int i = 0; i < 60; ++i) {
    BigUint m = BigUint::random_bits(rng, 64 + i * 7 % 300);
    if (!m.is_odd()) m = m + BigUint(1);
    const BigUint base = BigUint::random_below(rng, m);
    const BigUint exp = BigUint::random_bits(rng, 1 + i % 96);
    // Reference: naive reduction.
    BigUint expected(1);
    for (std::size_t bit = exp.bit_length(); bit-- > 0;) {
      expected = BigUint::mulmod(expected, expected, m);
      if (exp.bit(bit)) expected = BigUint::mulmod(expected, base, m);
    }
    EXPECT_EQ(BigUint::powmod(base, exp, m), expected) << "round " << i;
  }
}

TEST(BigUint, PowmodEvenModulusFallback) {
  Rng rng(113);
  for (int i = 0; i < 20; ++i) {
    BigUint m = BigUint::random_bits(rng, 100);
    if (m.is_odd()) m = m + BigUint(1);  // force even
    const BigUint base = BigUint::random_below(rng, m);
    const BigUint exp = BigUint::random_bits(rng, 40);
    BigUint expected(1);
    for (std::size_t bit = exp.bit_length(); bit-- > 0;) {
      expected = BigUint::mulmod(expected, expected, m);
      if (exp.bit(bit)) expected = BigUint::mulmod(expected, base, m);
    }
    EXPECT_EQ(BigUint::powmod(base, exp, m), expected) << "round " << i;
  }
}

TEST(BigUint, PowmodEdgeCases) {
  const BigUint m = BigUint::from_hex("ffffffffffffffffffffffffffffff61");
  EXPECT_EQ(BigUint::powmod(BigUint(5), BigUint(), m), BigUint(1));  // e = 0
  EXPECT_EQ(BigUint::powmod(BigUint(), BigUint(9), m), BigUint());   // 0^e
  EXPECT_EQ(BigUint::powmod(BigUint(7), BigUint(1), m), BigUint(7));
  EXPECT_EQ(BigUint::powmod(BigUint(3), BigUint(4), BigUint(1)), BigUint());
}

TEST(BigUint, GcdKnownAndProperties) {
  EXPECT_EQ(BigUint::gcd(BigUint(48), BigUint(36)), BigUint(12));
  EXPECT_EQ(BigUint::gcd(BigUint(17), BigUint(13)), BigUint(1));
  Rng rng(105);
  const BigUint a = BigUint::random_bits(rng, 128);
  EXPECT_EQ(BigUint::gcd(a, BigUint()), a);
}

TEST(BigUint, ModInverse) {
  Rng rng(106);
  const BigUint m = BigUint::from_hex("ffffffffffffffc5");
  for (int i = 0; i < 10; ++i) {
    const BigUint a = BigUint::random_below(rng, m - BigUint(1)) + BigUint(1);
    BigUint inv;
    ASSERT_TRUE(BigUint::modinv(a, m, &inv));
    EXPECT_EQ(BigUint::mulmod(a, inv, m), BigUint(1));
  }
}

TEST(BigUint, ModInverseFailsForNonCoprime) {
  BigUint inv;
  EXPECT_FALSE(BigUint::modinv(BigUint(6), BigUint(9), &inv));
}

TEST(BigUint, MillerRabinKnownPrimes) {
  Rng rng(107);
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 65537ULL, 2147483647ULL}) {
    EXPECT_TRUE(BigUint::is_probable_prime(BigUint(p), rng)) << p;
  }
  // Mersenne prime 2^127 - 1.
  const BigUint m127 = (BigUint(1) << 127) - BigUint(1);
  EXPECT_TRUE(BigUint::is_probable_prime(m127, rng));
}

TEST(BigUint, MillerRabinKnownComposites) {
  Rng rng(108);
  for (std::uint64_t c : {1ULL, 4ULL, 561ULL /* Carmichael */, 65536ULL,
                          2147483647ULL * 2 + 1 /* odd composite */}) {
    if (c == 1) {
      EXPECT_FALSE(BigUint::is_probable_prime(BigUint(c), rng));
      continue;
    }
    EXPECT_FALSE(BigUint::is_probable_prime(BigUint(c), rng)) << c;
  }
  // 2^128 + 1 is composite (F7 factors known).
  const BigUint f = (BigUint(1) << 128) + BigUint(1);
  EXPECT_FALSE(BigUint::is_probable_prime(f, rng));
}

TEST(BigUint, RandomPrimeHasRequestedWidth) {
  Rng rng(109);
  const BigUint p = BigUint::random_prime(rng, 96);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(BigUint::is_probable_prime(p, rng));
}

TEST(BigUint, RandomBelowIsBelow) {
  Rng rng(110);
  const BigUint bound = BigUint::from_hex("1000000000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigUint::random_below(rng, bound), bound);
  }
}

TEST(BigInt, SignedArithmetic) {
  const BigInt a = 7, b = -12;
  EXPECT_EQ((a + b).to_string_hex(), "-5");
  EXPECT_EQ((a - b).to_string_hex(), "13");  // 19 = 0x13
  EXPECT_EQ((a * b).to_string_hex(), "-54");  // -84 = -0x54
  EXPECT_TRUE((a + (-a)).is_zero());
}

TEST(BigInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_string_hex(), "-3");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_string_hex(), "-3");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_string_hex(), "-1");
}

TEST(BigInt, ModPositive) {
  const BigUint m(10);
  EXPECT_EQ(BigInt(-3).mod_positive(m), BigUint(7));
  EXPECT_EQ(BigInt(13).mod_positive(m), BigUint(3));
  EXPECT_EQ(BigInt(0).mod_positive(m), BigUint());
  EXPECT_EQ(BigInt(-10).mod_positive(m), BigUint());
}

TEST(ExtendedGcdTest, BezoutIdentity) {
  Rng rng(111);
  for (int i = 0; i < 20; ++i) {
    const BigUint a = BigUint::random_bits(rng, 90);
    const BigUint b = BigUint::random_bits(rng, 60);
    const ExtendedGcd eg = extended_gcd(a, b);
    const BigInt lhs = eg.x * BigInt::from_biguint(a) + eg.y * BigInt::from_biguint(b);
    EXPECT_EQ(lhs, BigInt::from_biguint(eg.g));
    EXPECT_EQ(eg.g, BigUint::gcd(a, b));
  }
}

}  // namespace
}  // namespace hermes::crypto
