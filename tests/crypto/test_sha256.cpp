#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

namespace hermes::crypto {
namespace {

std::string hex_of(const Digest& d) {
  return hex_encode(BytesView(d.data(), d.size()));
}

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_of(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) h.update(std::string_view(&c, 1));
  EXPECT_EQ(h.finish(), sha256(msg));
}

TEST(Sha256, ExactBlockBoundary) {
  const std::string msg(64, 'x');
  const std::string msg2(63, 'x');
  const std::string msg3(65, 'x');
  EXPECT_NE(sha256(msg), sha256(msg2));
  EXPECT_NE(sha256(msg), sha256(msg3));
  // Stability across chunkings at the boundary.
  Sha256 h;
  h.update(std::string_view(msg).substr(0, 32));
  h.update(std::string_view(msg).substr(32));
  EXPECT_EQ(h.finish(), sha256(msg));
}

TEST(Sha256, DigestPrefixU64BigEndian) {
  const Digest d = sha256("abc");
  const std::uint64_t prefix = digest_prefix_u64(d);
  EXPECT_EQ(prefix >> 56, d[0]);
  EXPECT_EQ(prefix & 0xff, d[7]);
}

TEST(Sha256, BytesOverloadMatchesString) {
  const std::string msg = "payload";
  EXPECT_EQ(sha256(msg), sha256(BytesView(
                             reinterpret_cast<const std::uint8_t*>(msg.data()),
                             msg.size())));
}

}  // namespace
}  // namespace hermes::crypto
