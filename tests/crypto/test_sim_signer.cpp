#include "crypto/sim_signer.hpp"

#include <gtest/gtest.h>

namespace hermes::crypto {
namespace {

TEST(SimSigner, SignVerifyRoundTrip) {
  const SimSigner signer(to_bytes("node-key"));
  const Bytes msg = to_bytes("hello");
  const Bytes sig = signer.sign(msg);
  EXPECT_TRUE(signer.verify(msg, sig));
  EXPECT_FALSE(signer.verify(to_bytes("other"), sig));
}

TEST(SimSigner, TamperedSignatureRejected) {
  const SimSigner signer(to_bytes("key"));
  Bytes sig = signer.sign(to_bytes("m"));
  sig[0] ^= 1;
  EXPECT_FALSE(signer.verify(to_bytes("m"), sig));
  sig[0] ^= 1;
  sig.pop_back();
  EXPECT_FALSE(signer.verify(to_bytes("m"), sig));
}

TEST(SimSigner, DerivedSignersAreDistinct) {
  const Bytes master = to_bytes("master");
  const SimSigner a = SimSigner::derive(master, 1);
  const SimSigner b = SimSigner::derive(master, 2);
  const Bytes msg = to_bytes("m");
  EXPECT_NE(a.sign(msg), b.sign(msg));
  EXPECT_NE(a.key_id(), b.key_id());
  // Deterministic derivation.
  EXPECT_EQ(SimSigner::derive(master, 1).sign(msg), a.sign(msg));
}

TEST(SimThreshold, PartialsVerifyAndCombine) {
  const SimThresholdScheme scheme(to_bytes("group"), 4, 3);
  const Bytes msg = to_bytes("seq 5 hash");
  std::vector<PartialSignature> partials;
  for (std::size_t i = 1; i <= 3; ++i) {
    partials.push_back(scheme.partial_sign(i, msg));
    EXPECT_TRUE(scheme.verify_partial(msg, partials.back()));
  }
  const auto sig = scheme.combine(msg, partials);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(scheme.verify_combined(msg, *sig));
}

TEST(SimThreshold, SubsetIndependence) {
  const SimThresholdScheme scheme(to_bytes("group"), 7, 5);
  const Bytes msg = to_bytes("m");
  std::vector<PartialSignature> s1, s2;
  for (std::size_t i : {1u, 2u, 3u, 4u, 5u}) s1.push_back(scheme.partial_sign(i, msg));
  for (std::size_t i : {3u, 4u, 5u, 6u, 7u}) s2.push_back(scheme.partial_sign(i, msg));
  const auto sig1 = scheme.combine(msg, s1);
  const auto sig2 = scheme.combine(msg, s2);
  ASSERT_TRUE(sig1 && sig2);
  EXPECT_EQ(*sig1, *sig2);
}

TEST(SimThreshold, CombineRejectsBelowThreshold) {
  const SimThresholdScheme scheme(to_bytes("group"), 4, 3);
  const Bytes msg = to_bytes("m");
  std::vector<PartialSignature> partials{scheme.partial_sign(1, msg),
                                         scheme.partial_sign(2, msg)};
  EXPECT_FALSE(scheme.combine(msg, partials).has_value());
}

TEST(SimThreshold, CombineIgnoresInvalidAndDuplicatePartials) {
  const SimThresholdScheme scheme(to_bytes("group"), 4, 3);
  const Bytes msg = to_bytes("m");
  PartialSignature forged = scheme.partial_sign(3, msg);
  forged.bytes[0] ^= 1;
  std::vector<PartialSignature> partials{
      scheme.partial_sign(1, msg), scheme.partial_sign(1, msg),
      scheme.partial_sign(2, msg), forged};
  // Only two distinct valid indices -> cannot reach threshold 3.
  EXPECT_FALSE(scheme.combine(msg, partials).has_value());
  partials.push_back(scheme.partial_sign(4, msg));
  EXPECT_TRUE(scheme.combine(msg, partials).has_value());
}

TEST(SimThreshold, WrongGroupKeyCannotVerify) {
  const SimThresholdScheme a(to_bytes("group-a"), 4, 3);
  const SimThresholdScheme b(to_bytes("group-b"), 4, 3);
  const Bytes msg = to_bytes("m");
  std::vector<PartialSignature> partials;
  for (std::size_t i = 1; i <= 3; ++i) partials.push_back(a.partial_sign(i, msg));
  const auto sig = a.combine(msg, partials);
  ASSERT_TRUE(sig.has_value());
  EXPECT_FALSE(b.verify_combined(msg, *sig));
}

TEST(SeedFromSignature, DeterministicAndSpread) {
  const Bytes sig1 = to_bytes("signature-1");
  const Bytes sig2 = to_bytes("signature-2");
  EXPECT_EQ(seed_from_signature(sig1), seed_from_signature(sig1));
  EXPECT_NE(seed_from_signature(sig1), seed_from_signature(sig2));
}

TEST(SeedFromSignature, ModKIsRoughlyUniform) {
  // The overlay selector is seed % k; check rough uniformity over many
  // distinct signatures (random-oracle behaviour of SHA-256).
  constexpr std::size_t kOverlays = 10;
  std::array<int, kOverlays> buckets{};
  for (int i = 0; i < 5000; ++i) {
    const Bytes sig = to_bytes("sig" + std::to_string(i));
    buckets[seed_from_signature(sig) % kOverlays] += 1;
  }
  for (int count : buckets) {
    EXPECT_GT(count, 350);
    EXPECT_LT(count, 650);
  }
}

TEST(RsaSignerBackend, RoundTrip) {
  Rng rng(99);
  const RsaSigner signer(rsa_generate(rng, 256));
  const Bytes msg = to_bytes("m");
  const Bytes sig = signer.sign(msg);
  EXPECT_TRUE(signer.verify(msg, sig));
  EXPECT_FALSE(signer.verify(to_bytes("n"), sig));
  EXPECT_EQ(signer.key_id().size(), 32u);
}

TEST(RsaThresholdBackend, RoundTripThroughInterface) {
  Rng rng(98);
  const RsaThresholdScheme scheme(
      threshold_rsa_generate(rng, 256, 4, 3));
  const Bytes msg = to_bytes("interface");
  std::vector<PartialSignature> partials;
  for (std::size_t i = 1; i <= 3; ++i) {
    partials.push_back(scheme.partial_sign(i, msg));
    EXPECT_TRUE(scheme.verify_partial(msg, partials.back()));
  }
  const auto sig = scheme.combine(msg, partials);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(scheme.verify_combined(msg, *sig));
}

}  // namespace
}  // namespace hermes::crypto
