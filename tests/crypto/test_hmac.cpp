#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

namespace hermes::crypto {
namespace {

std::string hex_of(const Digest& d) {
  return hex_encode(BytesView(d.data(), d.size()));
}

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex_of(hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Bytes key = to_bytes("Jefe");
  EXPECT_EQ(hex_of(hmac_sha256(key, "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex_of(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hex_of(hmac_sha256(key, "Test Using Larger Than Block-Size Key - "
                                    "Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  EXPECT_NE(hmac_sha256(to_bytes("k1"), "msg"), hmac_sha256(to_bytes("k2"), "msg"));
}

TEST(Hmac, DifferentMessagesDifferentMacs) {
  const Bytes key = to_bytes("key");
  EXPECT_NE(hmac_sha256(key, "m1"), hmac_sha256(key, "m2"));
}

}  // namespace
}  // namespace hermes::crypto
