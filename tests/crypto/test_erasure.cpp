#include "crypto/erasure.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace hermes::crypto {
namespace {

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(gf256::add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(gf256::add(0xff, 0xff), 0);
}

TEST(Gf256, MulKnownValues) {
  // AES field: 0x53 * 0xca = 0x01.
  EXPECT_EQ(gf256::mul(0x53, 0xca), 0x01);
  EXPECT_EQ(gf256::mul(0, 0x7f), 0);
  EXPECT_EQ(gf256::mul(1, 0x7f), 0x7f);
  EXPECT_EQ(gf256::mul(2, 0x80), 0x1b);  // x * x^7 = x^8 = 0x1b mod 0x11b
}

TEST(Gf256, MulCommutativeAssociativeDistributive) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_u64());
    const auto b = static_cast<std::uint8_t>(rng.next_u64());
    const auto c = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
    EXPECT_EQ(gf256::mul(a, gf256::mul(b, c)), gf256::mul(gf256::mul(a, b), c));
    EXPECT_EQ(gf256::mul(a, gf256::add(b, c)),
              gf256::add(gf256::mul(a, b), gf256::mul(a, c)));
  }
}

TEST(Gf256, InverseIsExact) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = gf256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_u64(255) + 1);
    const unsigned e = static_cast<unsigned>(rng.uniform_u64(10));
    std::uint8_t expected = 1;
    for (unsigned j = 0; j < e; ++j) expected = gf256::mul(expected, a);
    EXPECT_EQ(gf256::pow(a, e), expected);
  }
  EXPECT_EQ(gf256::pow(0, 0), 1);
  EXPECT_EQ(gf256::pow(0, 3), 0);
}

Bytes random_payload(Rng& rng, std::size_t size) {
  Bytes out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

TEST(Erasure, DataShardsAloneRoundTrip) {
  const ErasureCode code(4, 2);
  Rng rng(3);
  const Bytes payload = random_payload(rng, 1000);
  auto shards = code.encode(payload);
  ASSERT_EQ(shards.size(), 6u);
  shards.resize(4);  // keep only data shards
  const auto decoded = code.decode(shards);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(Erasure, AnyKSubsetReconstructs) {
  // The paper's configuration: (k+1, f+1+k) with k = 2, f = 1 — 3 data
  // shards out of 4 total... we use (3 data, 2 parity): any 3 of 5.
  const ErasureCode code(3, 2);
  Rng rng(4);
  const Bytes payload = random_payload(rng, 777);
  const auto shards = code.encode(payload);
  ASSERT_EQ(shards.size(), 5u);
  // Every 3-subset of the 5 shards must reconstruct.
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a + 1; b < 5; ++b) {
      for (std::size_t c = b + 1; c < 5; ++c) {
        const std::vector<Shard> subset{shards[a], shards[b], shards[c]};
        const auto decoded = code.decode(subset);
        ASSERT_TRUE(decoded.has_value()) << a << "," << b << "," << c;
        EXPECT_EQ(*decoded, payload) << a << "," << b << "," << c;
      }
    }
  }
}

TEST(Erasure, TooFewShardsFails) {
  const ErasureCode code(3, 2);
  Rng rng(5);
  const auto shards = code.encode(random_payload(rng, 100));
  const std::vector<Shard> two{shards[4], shards[1]};
  EXPECT_FALSE(code.decode(two).has_value());
}

TEST(Erasure, DuplicateIndicesDoNotCount) {
  const ErasureCode code(3, 1);
  Rng rng(6);
  const auto shards = code.encode(random_payload(rng, 64));
  const std::vector<Shard> dup{shards[0], shards[0], shards[0]};
  EXPECT_FALSE(code.decode(dup).has_value());
}

TEST(Erasure, EmptyAndTinyPayloads) {
  const ErasureCode code(4, 3);
  for (std::size_t size : {0u, 1u, 3u, 4u, 5u}) {
    Rng rng(7 + size);
    const Bytes payload = random_payload(rng, size);
    auto shards = code.encode(payload);
    // Drop all data shards; decode from parity + one data.
    std::vector<Shard> subset{shards[0], shards[4], shards[5], shards[6]};
    const auto decoded = code.decode(subset);
    ASSERT_TRUE(decoded.has_value()) << size;
    EXPECT_EQ(*decoded, payload) << size;
  }
}

TEST(Erasure, ParityOnlyReconstruction) {
  const ErasureCode code(2, 3);
  Rng rng(8);
  const Bytes payload = random_payload(rng, 250);
  const auto shards = code.encode(payload);
  const std::vector<Shard> parity_only{shards[3], shards[4]};
  const auto decoded = code.decode(parity_only);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(Erasure, PaperConfiguration) {
  // Section VIII-D: message into f+1+k chunks, recover from k+1. With
  // f = 1, k = 3: 4 data-equivalent... the paper's (k+1, f+1+k) maps to
  // data = k+1 = 4, total = f+1+k = 5 -> parity = 1.
  const ErasureCode code(4, 1);
  Rng rng(9);
  const Bytes payload = random_payload(rng, 250 * 16);  // a batch of txs
  const auto shards = code.encode(payload);
  ASSERT_EQ(shards.size(), 5u);
  // Lose any single shard (one faulty disjoint path).
  for (std::size_t lost = 0; lost < 5; ++lost) {
    std::vector<Shard> rest;
    for (std::size_t i = 0; i < 5; ++i) {
      if (i != lost) rest.push_back(shards[i]);
    }
    const auto decoded = code.decode(rest);
    ASSERT_TRUE(decoded.has_value()) << lost;
    EXPECT_EQ(*decoded, payload) << lost;
  }
}

TEST(Erasure, MismatchedShardSizesRejected) {
  const ErasureCode code(2, 1);
  Rng rng(10);
  auto shards = code.encode(random_payload(rng, 100));
  shards[1].bytes.pop_back();
  const std::vector<Shard> subset{shards[0], shards[1]};
  EXPECT_FALSE(code.decode(subset).has_value());
}

TEST(Erasure, RandomizedPropertySweep) {
  Rng rng(11);
  for (int round = 0; round < 40; ++round) {
    const std::size_t data = 1 + rng.uniform_u64(8);
    const std::size_t parity = rng.uniform_u64(5);
    const ErasureCode code(data, parity);
    const Bytes payload = random_payload(rng, 1 + rng.uniform_u64(600));
    auto shards = code.encode(payload);
    ASSERT_EQ(shards.size(), data + parity);
    // Random subset of exactly `data` shards.
    rng.shuffle(shards);
    shards.resize(data);
    const auto decoded = code.decode(shards);
    ASSERT_TRUE(decoded.has_value()) << "round " << round;
    EXPECT_EQ(*decoded, payload) << "round " << round;
  }
}

}  // namespace
}  // namespace hermes::crypto
