// Self-test for the hermeslint rule engine. Drives hermeslint::run()
// in-process against the checked-in fixtures under tests/lint/fixtures/,
// using virtual repo-relative paths so the directory-scoped rules fire.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace {

using hermeslint::Finding;
using hermeslint::LintResult;
using hermeslint::SourceFile;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

LintResult lint_one(const std::string& fixture, const std::string& virtual_path,
                    const std::vector<std::string>& baseline = {}) {
  return hermeslint::run({{virtual_path, read_fixture(fixture)}}, baseline);
}

std::vector<int> lines_for_rule(const LintResult& r, const std::string& rule) {
  std::vector<int> lines;
  for (const Finding& f : r.findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  return lines;
}

TEST(Hermeslint, WallclockFindsBannedCallsInScopedDirs) {
  const LintResult r = lint_one("wallclock.cc", "src/sim/wallclock.cc");
  EXPECT_EQ(lines_for_rule(r, "no-wallclock"),
            (std::vector<int>{7, 8, 9, 10, 11, 12, 33}));
  // Line 28's allow() carries a reason and silences its finding; line 33's
  // does not, so the finding stays AND the allow itself is flagged.
  EXPECT_EQ(lines_for_rule(r, "suppression"), (std::vector<int>{33}));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(Hermeslint, WallclockRuleIsScopedToSimFacingDirs) {
  const LintResult r = lint_one("wallclock.cc", "bench/wallclock.cc");
  EXPECT_TRUE(lines_for_rule(r, "no-wallclock").empty());
  // With no findings to match, both allow() comments are now unused.
  EXPECT_EQ(lines_for_rule(r, "suppression").size(), 2u);
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(Hermeslint, UnorderedIterFlagsRangeForAndIteratorEscapes) {
  const LintResult r = lint_one("unordered_iter.cc", "src/unordered_iter.cc");
  EXPECT_EQ(lines_for_rule(r, "unordered-iter"),
            (std::vector<int>{15, 16, 17, 20, 22}));
  EXPECT_EQ(r.suppressed, 1u);  // line 32, sorted-snapshot idiom
  EXPECT_EQ(lines_for_rule(r, "suppression"),
            (std::vector<int>{37}));  // allow() that matched nothing
}

TEST(Hermeslint, UnorderedIterIsScopedToSrcAndTools) {
  const LintResult r = lint_one("unordered_iter.cc", "docs/unordered_iter.cc");
  EXPECT_TRUE(lines_for_rule(r, "unordered-iter").empty());
}

TEST(Hermeslint, TagExhaustiveFlagsUndispatchedBodies) {
  const LintResult r = lint_one("tags.cc", "src/tags.cc");
  const std::vector<int> lines = lines_for_rule(r, "tag-exhaustive");
  ASSERT_EQ(lines, (std::vector<int>{13}));
  bool names_orphan = false;
  for (const Finding& f : r.findings) {
    if (f.rule == "tag-exhaustive" &&
        f.message.find("OrphanBody") != std::string::npos) {
      names_orphan = true;
    }
  }
  EXPECT_TRUE(names_orphan);
  EXPECT_EQ(r.suppressed, 1u);  // SignalBody, reasoned allow on line 14
}

TEST(Hermeslint, RawOwningNewAllowsPlacementAndDeletedFunctions) {
  const LintResult r = lint_one("raw_new.cc", "src/raw_new.cc");
  EXPECT_EQ(lines_for_rule(r, "raw-owning-new"),
            (std::vector<int>{13, 14, 15}));
  EXPECT_EQ(r.suppressed, 1u);  // line 24, pool-internals allow
}

TEST(Hermeslint, IncludeHygieneChecksHeadersOnly) {
  const LintResult bad = lint_one("header_bad.hpp", "src/header_bad.hpp");
  EXPECT_EQ(lines_for_rule(bad, "include-hygiene"), (std::vector<int>{1, 4}));

  const LintResult clean = lint_one("header_clean.hpp", "src/header_clean.hpp");
  EXPECT_TRUE(clean.findings.empty());
}

// Replaces the first occurrence of `from` in `text` (mutation-test helper;
// asserts the needle exists so a fixture edit cannot silently no-op the
// mutation).
std::string mutate(std::string text, const std::string& from,
                   const std::string& to) {
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "mutation needle missing: " << from;
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

TEST(Hermeslint, QuiescenceFindsHandlerToMutatorPaths) {
  const LintResult r = lint_one("quiescence.cc", "src/sim/quiescence.cc");
  EXPECT_EQ(lines_for_rule(r, "quiescence-safety"),
            (std::vector<int>{29, 36}));
  EXPECT_EQ(r.suppressed, 1u);  // SuppressedNode, reasoned allow
  bool has_path = false;
  for (const Finding& f : r.findings) {
    if (f.message.find("BadNode::on_message -> BadNode::handle -> "
                       "Net::set_crashed") != std::string::npos) {
      has_path = true;
    }
  }
  EXPECT_TRUE(has_path);  // the finding names the full call path
}

TEST(Hermeslint, QuiescenceMutationsFlipFindings) {
  const std::string base = read_fixture("quiescence.cc");

  // Severing the handler -> helper edge removes BadNode's finding (the
  // guarded mutator is no longer reachable); BadPipeNode's remains.
  {
    const std::string cut =
        mutate(base, "void on_message(const Msg& msg) { handle(msg.as<int>()); }",
               "void on_message(const Msg& msg) { (void)msg.as<int>(); }");
    const LintResult r =
        hermeslint::run({{"src/sim/quiescence.cc", cut}}, {});
    EXPECT_EQ(lines_for_rule(r, "quiescence-safety"), (std::vector<int>{36}));
  }

  // Unwrapping GoodDeferNode's Engine::defer makes a new finding appear at
  // its handler.
  {
    const std::string unwrapped =
        mutate(base, "engine.defer([this, m] { net.set_crashed(m, true); });",
               "net.set_crashed(m, true);");
    const LintResult r =
        hermeslint::run({{"src/sim/quiescence.cc", unwrapped}}, {});
    EXPECT_EQ(lines_for_rule(r, "quiescence-safety"),
              (std::vector<int>{29, 36, 50}));
  }
}

TEST(Hermeslint, LockDisciplineFlagsUnlockedAccessAndRequiresCallers) {
  const LintResult r =
      lint_one("lock_discipline.cc", "src/sim/lock_discipline.cc");
  EXPECT_EQ(lines_for_rule(r, "lock-discipline"), (std::vector<int>{15, 20}));
  EXPECT_EQ(r.suppressed, 1u);  // suppressed_peek, reasoned allow
}

TEST(Hermeslint, LockDisciplineMutationsFlipFindings) {
  const std::string base = read_fixture("lock_discipline.cc");

  // Adding the lock to peek() removes its finding; caller_bad's remains.
  {
    const std::string locked = mutate(
        base, "int peek() const { return table_; }",
        "int peek() const { std::lock_guard<std::mutex> l(mu_); return "
        "table_; }");
    const LintResult r =
        hermeslint::run({{"src/sim/lock_discipline.cc", locked}}, {});
    EXPECT_EQ(lines_for_rule(r, "lock-discipline"), (std::vector<int>{20}));
  }

  // Removing the HERMES_REQUIRES annotation turns locked_size() into an
  // unguarded accessor: caller_bad's call-site finding disappears and
  // locked_size itself is now an unlocked access.
  {
    const std::string unannotated =
        mutate(base, "int locked_size() const HERMES_REQUIRES(mu_)",
               "int locked_size() const");
    const LintResult r =
        hermeslint::run({{"src/sim/lock_discipline.cc", unannotated}}, {});
    EXPECT_EQ(lines_for_rule(r, "lock-discipline"), (std::vector<int>{15, 18}));
  }
}

TEST(Hermeslint, LayeringEnforcesModuleDagAndCanonicalPaths) {
  const LintResult r = lint_one("layering.cc", "src/overlay/layering.cc");
  EXPECT_EQ(lines_for_rule(r, "layering"), (std::vector<int>{9, 10}));
  EXPECT_EQ(r.suppressed, 1u);  // own-line allow above the workload include
  bool names_module = false;
  for (const Finding& f : r.findings) {
    if (f.message.find("module 'overlay' must not include "
                       "'hermes/hermes_node.hpp'") != std::string::npos) {
      names_module = true;
    }
  }
  EXPECT_TRUE(names_module);
}

TEST(Hermeslint, LayeringIsUnscopedOutsideModules) {
  // The same file under tests/ is unscoped: no layering findings, and the
  // now-unmatched allow() is itself reported as unused.
  const LintResult r = lint_one("layering.cc", "tests/lint_fixture_copy.cc");
  EXPECT_TRUE(lines_for_rule(r, "layering").empty());
  EXPECT_EQ(r.suppressed, 0u);
  EXPECT_EQ(lines_for_rule(r, "suppression"), (std::vector<int>{11}));
}

TEST(Hermeslint, LayeringMutationDowngradingIncludeRemovesFinding) {
  const std::string base = read_fixture("layering.cc");
  const std::string downgraded = mutate(
      base, "#include \"hermes/hermes_node.hpp\"", "#include \"crypto/rsa.hpp\"");
  const LintResult r =
      hermeslint::run({{"src/overlay/layering.cc", downgraded}}, {});
  EXPECT_EQ(lines_for_rule(r, "layering"), (std::vector<int>{10}));
}

TEST(Hermeslint, SemanticFindingsRoundTripThroughBaseline) {
  const std::vector<std::pair<std::string, std::string>> fixtures = {
      {"quiescence.cc", "src/sim/quiescence.cc"},
      {"lock_discipline.cc", "src/sim/lock_discipline.cc"},
      {"layering.cc", "src/overlay/layering.cc"},
  };
  std::vector<SourceFile> files;
  for (const auto& [fixture, path] : fixtures) {
    files.push_back({path, read_fixture(fixture)});
  }
  const LintResult first = hermeslint::run(files, {});
  ASSERT_EQ(first.findings.size(), 6u);

  std::vector<std::string> baseline;
  for (const Finding& f : first.findings) {
    baseline.push_back(hermeslint::baseline_entry(f));
  }
  const LintResult second = hermeslint::run(files, baseline);
  EXPECT_TRUE(second.findings.empty());
  EXPECT_EQ(second.baselined, first.findings.size());
  EXPECT_EQ(second.stale_baseline, 0u);
}

TEST(Hermeslint, BaselineSilencesGrandfatheredFindings) {
  const LintResult first = lint_one("wallclock.cc", "src/sim/wallclock.cc");
  ASSERT_FALSE(first.findings.empty());

  std::vector<std::string> baseline;
  baseline.push_back("# comment lines and blanks are ignored");
  baseline.push_back("");
  for (const Finding& f : first.findings) {
    baseline.push_back(hermeslint::baseline_entry(f));
  }
  baseline.push_back("no-wallclock|src/sim/other.cc|stale entry");

  const LintResult second =
      lint_one("wallclock.cc", "src/sim/wallclock.cc", baseline);
  EXPECT_TRUE(second.findings.empty());
  EXPECT_EQ(second.baselined, first.findings.size());
  EXPECT_EQ(second.stale_baseline, 1u);
}

TEST(Hermeslint, OutputIsDeterministicAndInputOrderIndependent) {
  const std::vector<std::pair<std::string, std::string>> fixtures = {
      {"wallclock.cc", "src/sim/wallclock.cc"},
      {"unordered_iter.cc", "src/unordered_iter.cc"},
      {"tags.cc", "src/tags.cc"},
      {"raw_new.cc", "src/raw_new.cc"},
      {"header_bad.hpp", "src/header_bad.hpp"},
      {"header_clean.hpp", "src/header_clean.hpp"},
      {"quiescence.cc", "src/sim/quiescence.cc"},
      {"lock_discipline.cc", "src/sim/lock_discipline.cc"},
      {"layering.cc", "src/overlay/layering.cc"},
  };
  std::vector<SourceFile> files;
  for (const auto& [fixture, path] : fixtures) {
    files.push_back({path, read_fixture(fixture)});
  }

  const LintResult forward = hermeslint::run(files, {});
  const std::string forward_text = hermeslint::render(forward.findings);

  std::vector<SourceFile> reversed(files.rbegin(), files.rend());
  const LintResult backward = hermeslint::run(reversed, {});

  EXPECT_EQ(forward_text, hermeslint::render(backward.findings));
  EXPECT_EQ(forward.suppressed, backward.suppressed);
  EXPECT_TRUE(std::is_sorted(forward.findings.begin(), forward.findings.end(),
                             hermeslint::finding_less));
  EXPECT_FALSE(forward_text.empty());
}

TEST(HermeslintIndex, ExtractsDefinitionsCallsLocksAndAnnotations) {
  const hermeslint::Index idx = hermeslint::build_index(
      {{"src/sim/a.hpp",
        "struct W {\n"
        "  void run();\n"
        "  void helper(int) const;\n"
        "  std::mutex mu_;\n"
        "  int jobs_ HERMES_GUARDED_BY(mu_) = 0;\n"
        "};\n"},
       {"src/sim/a.cpp",
        "#include \"sim/a.hpp\"\n"
        "void W::run() {\n"
        "  std::lock_guard<std::mutex> lock(mu_);\n"
        "  helper(jobs_);\n"
        "  eng.defer([this] { helper(1); });\n"
        "}\n"}});

  ASSERT_EQ(idx.functions.size(), 1u);  // declarations are not definitions
  const hermeslint::FunctionDef& run = idx.functions[0];
  EXPECT_EQ(run.name, "run");
  EXPECT_EQ(run.scope, "W");
  EXPECT_EQ(run.file, "src/sim/a.cpp");
  EXPECT_EQ(run.line, 2);
  EXPECT_EQ(run.locked_mutexes.count("mu_"), 1u);
  EXPECT_EQ(run.body_idents.count("jobs_"), 1u);

  // Two helper call sites: the direct one and the deferred one.
  int direct = 0, deferred = 0;
  for (const hermeslint::CallSite& c : run.calls) {
    if (c.name != "helper") continue;
    (c.deferred ? deferred : direct)++;
  }
  EXPECT_EQ(direct, 1);
  EXPECT_EQ(deferred, 1);

  ASSERT_EQ(idx.guarded_fields.size(), 1u);
  EXPECT_EQ(idx.guarded_fields[0].cls, "W");
  EXPECT_EQ(idx.guarded_fields[0].field, "jobs_");
  EXPECT_EQ(idx.guarded_fields[0].mutex, "mu_");

  // The include graph records the directive with its line.
  ASSERT_EQ(idx.files.size(), 2u);
  EXPECT_EQ(idx.files[0].path, "src/sim/a.cpp");  // sorted path order
  ASSERT_EQ(idx.files[0].includes.size(), 1u);
  EXPECT_EQ(idx.files[0].includes[0].path, "sim/a.hpp");
  EXPECT_EQ(idx.files[0].includes[0].line, 1);
}

TEST(HermeslintIndex, ResolvePrefersQualifierThenScope) {
  const hermeslint::Index idx = hermeslint::build_index(
      {{"src/x.cpp",
        "struct A { void f() { g(); } void g() {} };\n"
        "struct B { void g() {} };\n"
        "void g() {}\n"}});
  ASSERT_EQ(idx.functions.size(), 4u);

  const hermeslint::FunctionDef* af = nullptr;
  for (const auto& fn : idx.functions) {
    if (fn.scope == "A" && fn.name == "f") af = &fn;
  }
  ASSERT_NE(af, nullptr);
  ASSERT_EQ(af->calls.size(), 1u);
  // A bare call from A::f resolves to A::g and the free g, never B::g.
  std::vector<std::string> scopes;
  for (std::size_t i : idx.resolve(*af, af->calls[0])) {
    scopes.push_back(idx.functions[i].scope);
  }
  std::sort(scopes.begin(), scopes.end());
  EXPECT_EQ(scopes, (std::vector<std::string>{"", "A"}));
}

TEST(Hermeslint, RuleCatalogueIsSortedAndComplete) {
  const auto& rules = hermeslint::rule_catalogue();
  std::vector<std::string> ids;
  for (const auto& r : rules) {
    ids.push_back(r.id);
    EXPECT_FALSE(r.summary.empty()) << r.id;
  }
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  const std::vector<std::string> expected = {
      "include-hygiene", "layering",          "lock-discipline",
      "no-wallclock",    "quiescence-safety", "raw-owning-new",
      "suppression",     "tag-exhaustive",    "unordered-iter"};
  EXPECT_EQ(ids, expected);
}

}  // namespace
