// Self-test for the hermeslint rule engine. Drives hermeslint::run()
// in-process against the checked-in fixtures under tests/lint/fixtures/,
// using virtual repo-relative paths so the directory-scoped rules fire.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using hermeslint::Finding;
using hermeslint::LintResult;
using hermeslint::SourceFile;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

LintResult lint_one(const std::string& fixture, const std::string& virtual_path,
                    const std::vector<std::string>& baseline = {}) {
  return hermeslint::run({{virtual_path, read_fixture(fixture)}}, baseline);
}

std::vector<int> lines_for_rule(const LintResult& r, const std::string& rule) {
  std::vector<int> lines;
  for (const Finding& f : r.findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  return lines;
}

TEST(Hermeslint, WallclockFindsBannedCallsInScopedDirs) {
  const LintResult r = lint_one("wallclock.cc", "src/sim/wallclock.cc");
  EXPECT_EQ(lines_for_rule(r, "no-wallclock"),
            (std::vector<int>{7, 8, 9, 10, 11, 12, 33}));
  // Line 28's allow() carries a reason and silences its finding; line 33's
  // does not, so the finding stays AND the allow itself is flagged.
  EXPECT_EQ(lines_for_rule(r, "suppression"), (std::vector<int>{33}));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(Hermeslint, WallclockRuleIsScopedToSimFacingDirs) {
  const LintResult r = lint_one("wallclock.cc", "bench/wallclock.cc");
  EXPECT_TRUE(lines_for_rule(r, "no-wallclock").empty());
  // With no findings to match, both allow() comments are now unused.
  EXPECT_EQ(lines_for_rule(r, "suppression").size(), 2u);
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(Hermeslint, UnorderedIterFlagsRangeForAndIteratorEscapes) {
  const LintResult r = lint_one("unordered_iter.cc", "src/unordered_iter.cc");
  EXPECT_EQ(lines_for_rule(r, "unordered-iter"),
            (std::vector<int>{15, 16, 17, 20, 22}));
  EXPECT_EQ(r.suppressed, 1u);  // line 32, sorted-snapshot idiom
  EXPECT_EQ(lines_for_rule(r, "suppression"),
            (std::vector<int>{37}));  // allow() that matched nothing
}

TEST(Hermeslint, UnorderedIterIsScopedToSrcAndTools) {
  const LintResult r = lint_one("unordered_iter.cc", "docs/unordered_iter.cc");
  EXPECT_TRUE(lines_for_rule(r, "unordered-iter").empty());
}

TEST(Hermeslint, TagExhaustiveFlagsUndispatchedBodies) {
  const LintResult r = lint_one("tags.cc", "src/tags.cc");
  const std::vector<int> lines = lines_for_rule(r, "tag-exhaustive");
  ASSERT_EQ(lines, (std::vector<int>{13}));
  bool names_orphan = false;
  for (const Finding& f : r.findings) {
    if (f.rule == "tag-exhaustive" &&
        f.message.find("OrphanBody") != std::string::npos) {
      names_orphan = true;
    }
  }
  EXPECT_TRUE(names_orphan);
  EXPECT_EQ(r.suppressed, 1u);  // SignalBody, reasoned allow on line 14
}

TEST(Hermeslint, RawOwningNewAllowsPlacementAndDeletedFunctions) {
  const LintResult r = lint_one("raw_new.cc", "src/raw_new.cc");
  EXPECT_EQ(lines_for_rule(r, "raw-owning-new"),
            (std::vector<int>{13, 14, 15}));
  EXPECT_EQ(r.suppressed, 1u);  // line 24, pool-internals allow
}

TEST(Hermeslint, IncludeHygieneChecksHeadersOnly) {
  const LintResult bad = lint_one("header_bad.hpp", "src/header_bad.hpp");
  EXPECT_EQ(lines_for_rule(bad, "include-hygiene"), (std::vector<int>{1, 4}));

  const LintResult clean = lint_one("header_clean.hpp", "src/header_clean.hpp");
  EXPECT_TRUE(clean.findings.empty());
}

TEST(Hermeslint, BaselineSilencesGrandfatheredFindings) {
  const LintResult first = lint_one("wallclock.cc", "src/sim/wallclock.cc");
  ASSERT_FALSE(first.findings.empty());

  std::vector<std::string> baseline;
  baseline.push_back("# comment lines and blanks are ignored");
  baseline.push_back("");
  for (const Finding& f : first.findings) {
    baseline.push_back(hermeslint::baseline_entry(f));
  }
  baseline.push_back("no-wallclock|src/sim/other.cc|stale entry");

  const LintResult second =
      lint_one("wallclock.cc", "src/sim/wallclock.cc", baseline);
  EXPECT_TRUE(second.findings.empty());
  EXPECT_EQ(second.baselined, first.findings.size());
  EXPECT_EQ(second.stale_baseline, 1u);
}

TEST(Hermeslint, OutputIsDeterministicAndInputOrderIndependent) {
  const std::vector<std::pair<std::string, std::string>> fixtures = {
      {"wallclock.cc", "src/sim/wallclock.cc"},
      {"unordered_iter.cc", "src/unordered_iter.cc"},
      {"tags.cc", "src/tags.cc"},
      {"raw_new.cc", "src/raw_new.cc"},
      {"header_bad.hpp", "src/header_bad.hpp"},
      {"header_clean.hpp", "src/header_clean.hpp"},
  };
  std::vector<SourceFile> files;
  for (const auto& [fixture, path] : fixtures) {
    files.push_back({path, read_fixture(fixture)});
  }

  const LintResult forward = hermeslint::run(files, {});
  const std::string forward_text = hermeslint::render(forward.findings);

  std::vector<SourceFile> reversed(files.rbegin(), files.rend());
  const LintResult backward = hermeslint::run(reversed, {});

  EXPECT_EQ(forward_text, hermeslint::render(backward.findings));
  EXPECT_EQ(forward.suppressed, backward.suppressed);
  EXPECT_TRUE(std::is_sorted(forward.findings.begin(), forward.findings.end(),
                             hermeslint::finding_less));
  EXPECT_FALSE(forward_text.empty());
}

TEST(Hermeslint, RuleCatalogueIsSortedAndComplete) {
  const auto& rules = hermeslint::rule_catalogue();
  std::vector<std::string> ids;
  for (const auto& r : rules) {
    ids.push_back(r.id);
    EXPECT_FALSE(r.summary.empty()) << r.id;
  }
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  const std::vector<std::string> expected = {
      "include-hygiene", "no-wallclock",   "raw-owning-new",
      "suppression",     "tag-exhaustive", "unordered-iter"};
  EXPECT_EQ(ids, expected);
}

}  // namespace
