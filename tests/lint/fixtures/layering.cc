// Fixture for the layering rule. The verdict depends on the virtual path
// this file is linted under (tests/lint/test_hermeslint.cpp uses
// src/overlay/layering.cc); line numbers are pinned there.
#include <vector>

#include "overlay/builder.hpp"    // OK: same module
#include "support/assert.hpp"     // OK: support is below overlay
#include "net/graph.hpp"          // OK: net is below overlay
#include "hermes/hermes_node.hpp"  // BAD: hermes is above overlay
#include "src/overlay/overlay.hpp"  // BAD: non-canonical src/ prefix
// hermeslint: allow(layering) transitional shim until the split lands
#include "workload/driver.hpp"

namespace fixture {
inline int layering_fixture_symbol() { return 0; }
}  // namespace fixture
