// Fixture: unordered-iter rule. Linted under a virtual src/ path.
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::unordered_map<int, double> scores_;
std::unordered_set<int> members_;
std::unordered_map<int, std::unordered_map<int, double>> nested_;
std::map<int, double> ordered_;

double violations() {
  double sum = 0.0;
  for (const auto& [k, v] : scores_) sum += v;          // line 15: range-for
  for (int m : members_) sum += m;                      // line 16: range-for
  for (auto it = scores_.begin(); it != scores_.end(); ++it) {  // line 17: begin()
    sum += it->second;
  }
  std::vector<int> copy(members_.begin(), members_.end());  // line 20: begin()
  auto inner = nested_.find(1);
  for (const auto& [k, v] : inner->second) sum += v;    // line 22: nested map
  return sum + copy.size();
}

double clean() {
  double sum = 0.0;
  for (const auto& [k, v] : ordered_) sum += v;  // std::map: ordered
  sum += scores_.count(3);                       // lookup, no iteration
  std::vector<std::pair<int, double>> snap;
  // hermeslint: allow(unordered-iter) fixture: snapshot is sorted before use
  for (const auto& [k, v] : scores_) snap.emplace_back(k, v);
  return sum + snap.size();
}

void unused_suppression() {
  // hermeslint: allow(unordered-iter) fixture: nothing to suppress here
  int x = 0;
  (void)x;
}
