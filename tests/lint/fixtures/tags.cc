// Fixture: tag-exhaustive rule. Linted under a virtual src/ path.
namespace sim {
template <typename T>
struct Body {};
struct Message {
  template <typename T> const T& as() const;
  template <typename T> const T* try_as() const;
};
}  // namespace sim

struct HandledBody final : sim::Body<HandledBody> {};    // dispatched below
struct SnoopedBody final : sim::Body<SnoopedBody> {};    // try_as below
struct OrphanBody final : sim::Body<OrphanBody> {};      // line 13: no dispatch
// hermeslint: allow(tag-exhaustive) fixture: signal-only body, arrival is the payload
struct SignalBody final : sim::Body<SignalBody> {};

void dispatch(const sim::Message& msg) {
  (void)msg.as<HandledBody>();
  (void)msg.try_as<SnoopedBody>();
}
