// Fixture: include-hygiene rule — fully clean header.
#pragma once

#include <vector>

inline std::vector<int> three() { return {1, 2, 3}; }
