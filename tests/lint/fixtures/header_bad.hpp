// Fixture: include-hygiene rule — no '#pragma once' anywhere in here.
#include <vector>

using namespace std;  // line 4: banned in headers

inline vector<int> three() { return {1, 2, 3}; }
