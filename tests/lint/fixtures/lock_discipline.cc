// Fixture for the lock-discipline rule. Line numbers are pinned by
// tests/lint/test_hermeslint.cpp — edit with care.
#include <mutex>

namespace fixture {

struct Cache {
  Cache() { table_ = 1; }  // OK: constructors are exempt

  int get(int k) const {
    std::lock_guard<std::mutex> lock(mu_);  // OK: holder names the mutex
    return table_ + k;
  }

  int peek() const { return table_; }  // BAD: no lock, no REQUIRES

  // OK: the caller must hold mu_ (declaration-site annotation).
  int locked_size() const HERMES_REQUIRES(mu_) { return table_; }

  int caller_bad() const { return locked_size(); }  // BAD: REQUIRES callee, no lock

  int caller_ok() const {
    std::unique_lock<std::mutex> lock(mu_);
    return locked_size();
  }

  int explicit_lock() {
    mu_.lock();  // OK: explicit .lock() counts as holding
    const int v = table_;
    mu_.unlock();
    return v;
  }

  // hermeslint: allow(lock-discipline) single-threaded init path, benched
  int suppressed_peek() const { return table_; }

  mutable std::mutex mu_;
  int table_ HERMES_GUARDED_BY(mu_) = 0;
  int free_ = 0;  // unguarded: may be touched anywhere
};

inline int touch_free(Cache& c) { return c.free_; }  // OK: not guarded

}  // namespace fixture
