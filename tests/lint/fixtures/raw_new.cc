// Fixture: raw-owning-new rule.
#include <new>

struct Widget {
  Widget() = default;
  Widget(const Widget&) = delete;             // '= delete': allowed
  Widget& operator=(const Widget&) = delete;  // '= delete': allowed
};

alignas(Widget) static unsigned char storage[sizeof(Widget)];

Widget* violations() {
  Widget* w = new Widget();                   // line 13: owning new
  delete w;                                   // line 14: delete
  return new Widget();                        // line 15: owning new
}

Widget* placement_ok() {
  return ::new (static_cast<void*>(storage)) Widget();  // placement: allowed
}

Widget* suppressed() {
  // hermeslint: allow(raw-owning-new) fixture: pool internals own this allocation
  return new Widget();
}
