// Fixture: no-wallclock rule. Linted under a virtual src/sim/ path so the
// directory-scoped rule applies. Line numbers are asserted by the
// self-test; append new cases at the end.
#include <chrono>

void violations() {
  auto a = std::chrono::system_clock::now();               // line 7: banned
  auto b = std::chrono::steady_clock::now();               // line 8: banned
  auto c = time(nullptr);                                  // line 9: banned
  auto d = std::time(nullptr);                             // line 10: banned
  int e = rand();                                          // line 11: banned
  std::random_device rd;                                   // line 12: banned
  (void)a; (void)b; (void)c; (void)d; (void)e; (void)rd;
}

struct Engine {
  double time() const { return 0.0; }
  static double clock() { return 0.0; }
};

void clean(Engine& engine) {
  double t = engine.time();       // member call: not libc time()
  double u = Engine::clock();     // class-qualified: not libc clock()
  (void)t; (void)u;
}

void suppressed() {
  int x = rand();  // hermeslint: allow(no-wallclock) fixture: demonstrates a reasoned suppression
  (void)x;
}

void reasonless() {
  int y = rand();  // hermeslint: allow(no-wallclock)
  (void)y;
}
