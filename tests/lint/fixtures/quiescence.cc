// Fixture for the quiescence-safety rule. Line numbers are pinned by
// tests/lint/test_hermeslint.cpp — edit with care.
namespace sim {

struct Net {
  void require_quiescent();
  // Guarded mutator: discovered via the require_quiescent() call, not by
  // name.
  void set_crashed(int node, bool v) {
    require_quiescent();
    crashed = node + static_cast<int>(v);
  }
  int crashed = 0;
};

struct Pipe {
  // Guarded state: only quiescent contexts may touch the queue.
  void push(int d) { queue_ = d; }
  int queue_ HERMES_GUARDED_BY_QUIESCENCE = 0;
};

struct Msg {
  template <class T>
  T as() const;
};

struct BadNode {
  // BAD: handler -> helper -> guarded mutator with no defer on the path.
  void on_message(const Msg& msg) { handle(msg.as<int>()); }
  void handle(int m) { net.set_crashed(m, true); }
  Net net;
};

struct BadPipeNode {
  // BAD: handler reaches quiescence-guarded state directly.
  void on_message(int m) { pipe.push(m); }
  Pipe pipe;
};

struct Engine {
  template <class F>
  void defer(F f);
  struct ShardScope {
    ShardScope(Engine& e, int shard);
  };
};

struct GoodDeferNode {
  // OK: the mutation is wrapped in Engine::defer — runs at the barrier.
  void on_message(const Msg& msg) {
    const int m = msg.as<int>();
    engine.defer([this, m] { net.set_crashed(m, true); });
  }
  Net net;
  Engine engine;
};

struct GoodScopedNode {
  // OK: the reachable mutator runs under ShardScope (quiescent context).
  void on_message(const Msg& msg) { relaunch(msg.as<int>()); }
  void relaunch(int m) {
    Engine::ShardScope scope(engine, m);
    net.set_crashed(m, true);
  }
  Net net;
  Engine engine;
};

struct SuppressedNode {
  // hermeslint: allow(quiescence-safety) replayed from a recorded trace, never live
  void on_message(const Msg& msg) { net.set_crashed(msg.as<int>(), true); }
  Net net;
};

}  // namespace sim
