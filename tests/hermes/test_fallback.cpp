// HERMES fallback (Section VII-A) and TRS loss-recovery tests: the paths
// exercised when the fault-density assumption or the network misbehaves.
#include <gtest/gtest.h>

#include "../protocols/harness.hpp"
#include "hermes/hermes_node.hpp"

namespace hermes::hermes_proto {
namespace {

using protocols::Behavior;
using protocols::honest_coverage;
using protocols::inject_tx;
using protocols::testing::World;

HermesConfig fast_config(std::size_t f = 1, std::size_t k = 4) {
  HermesConfig config;
  config.f = f;
  config.k = k;
  config.builder.annealing.initial_temperature = 5.0;
  config.builder.annealing.min_temperature = 1.0;
  config.builder.annealing.cooling_rate = 0.8;
  config.builder.annealing.moves_per_temperature = 4;
  return config;
}

TEST(HermesTrsRecovery, SurvivesHeavyMessageLoss) {
  sim::NetworkParams lossy;
  lossy.drop_probability = 0.15;
  HermesProtocol protocol(fast_config());
  World w(40, protocol, 61, lossy);
  w.start();
  const auto tx = w.send_from(3);
  w.run_ms(12000);
  // The TRS retries and Bracha retransmissions must push this through.
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.95);
}

TEST(HermesTrsRecovery, CompletesWithByzantineCommitteeMember) {
  HermesProtocol protocol(fast_config());
  World w(40, protocol, 62);
  w.ctx->assign_behaviors(0.1, Behavior::kDropper);
  w.start();
  // With f = 1 the committee holds at most one non-honest member; the TRS
  // must still complete from the 2f+1 honest partials.
  std::size_t byz_in_committee = 0;
  for (net::NodeId m : protocol.shared()->committee) {
    if (!w.ctx->is_honest(m)) ++byz_in_committee;
  }
  EXPECT_LE(byz_in_committee, 1u);
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const auto tx = inject_tx(*w.ctx, sender);
  w.run_ms(8000);
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.95);
}

TEST(HermesFallback, RepairsEntryPointCensorship) {
  // Force every entry point of every overlay to be a dropper: the overlay
  // path is dead on arrival and only the fallback can spread the tx.
  HermesProtocol protocol(fast_config(1, 2));
  World w(40, protocol, 63);
  w.start();  // builds overlays first so we can find the entries
  for (const auto& ov : protocol.shared()->overlays) {
    for (net::NodeId e : ov.entry_points()) {
      w.ctx->behaviors[e] = Behavior::kDropper;
    }
  }
  net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const auto tx = inject_tx(*w.ctx, sender);
  w.run_ms(15000);
  // Fallback offers ride physical links from the sender outward; the tx
  // still reaches a large majority of honest nodes.
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.9);
}

TEST(HermesFallback, OffersAreSmallAndBounded) {
  HermesProtocol protocol(fast_config());
  World w(40, protocol, 64);
  w.start();
  const auto tx = w.send_from(1);
  w.run_ms(8000);
  (void)tx;
  std::size_t total_offers = 0;
  for (net::NodeId v = 0; v < 40; ++v) {
    total_offers += static_cast<const HermesNode&>(w.ctx->node(v))
                        .fallback_pushes();
  }
  // 3 rounds x fanout 2 per holder, bounded by 6 per node per tx.
  EXPECT_LE(total_offers, 40u * 6u);
  EXPECT_GT(total_offers, 0u);
}

TEST(HermesFallback, PullServesCertificateAndPayload) {
  // Nodes that learn a tx only via fallback must still end up with a
  // serving-capable copy (certificate included), so repair is epidemic.
  sim::NetworkParams lossy;
  lossy.drop_probability = 0.25;
  HermesProtocol protocol(fast_config(1, 2));
  World w(30, protocol, 65, lossy);
  w.start();
  const auto tx = w.send_from(2);
  w.run_ms(20000);
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.9);
}

TEST(HermesFallback, DisabledMeansNoOffers) {
  HermesConfig config = fast_config();
  config.enable_fallback = false;
  HermesProtocol protocol(config);
  World w(30, protocol, 66);
  w.start();
  const auto tx = w.send_from(1);
  w.run_ms(5000);
  (void)tx;
  for (net::NodeId v = 0; v < 30; ++v) {
    EXPECT_EQ(
        static_cast<const HermesNode&>(w.ctx->node(v)).fallback_pushes(), 0u);
  }
}

TEST(HermesInjection, DisjointPathModeStillDelivers) {
  HermesConfig config = fast_config();
  config.direct_entry_injection = false;  // hop-by-hop disjoint paths
  HermesProtocol protocol(config);
  World w(40, protocol, 67);
  w.start();
  const auto tx = w.send_from(9);
  w.run_ms(8000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
}

TEST(HermesInjection, DisjointPathsSurviveByzantineRelays) {
  HermesConfig config = fast_config();
  config.direct_entry_injection = false;
  HermesProtocol protocol(config);
  World w(60, protocol, 68);
  w.ctx->assign_behaviors(0.2, Behavior::kDropper);
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const auto tx = inject_tx(*w.ctx, sender);
  w.run_ms(10000);
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.9);
}

}  // namespace
}  // namespace hermes::hermes_proto
