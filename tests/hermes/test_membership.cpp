#include "hermes/membership.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/topology.hpp"

namespace hermes::hermes_proto {
namespace {

net::Topology test_topology(std::size_t n = 60) {
  net::TopologyParams params;
  params.node_count = n;
  params.min_degree = 5;
  Rng rng(88);
  return net::make_topology(params, rng);
}

// --- PeerSampler ------------------------------------------------------------

TEST(PeerSampler, InitializeRespectsViewSizeAndSelf) {
  PeerSampler sampler(0, 4, 2, Rng(1));
  const std::vector<net::NodeId> seeds{0, 1, 2, 3, 4, 5, 6};
  sampler.initialize(seeds);
  EXPECT_EQ(sampler.view().size(), 4u);
  EXPECT_FALSE(sampler.contains(0));  // never holds itself
}

TEST(PeerSampler, ExchangePicksOldestAndIncludesSelf) {
  PeerSampler sampler(9, 4, 3, Rng(2));
  const std::vector<net::NodeId> seeds{1, 2, 3, 4};
  sampler.initialize(seeds);
  const auto ex = sampler.begin_exchange();
  ASSERT_TRUE(ex.has_value());
  // Partner removed from the view.
  EXPECT_FALSE(sampler.contains(ex->partner));
  // Own descriptor with age 0 is always shipped.
  bool has_self = false;
  for (const auto& d : ex->sent) {
    if (d.id == 9) {
      has_self = true;
      EXPECT_EQ(d.age, 0u);
    }
  }
  EXPECT_TRUE(has_self);
  EXPECT_LE(ex->sent.size(), 3u);
}

TEST(PeerSampler, EmptyViewYieldsNoExchange) {
  PeerSampler sampler(9, 4, 2, Rng(3));
  EXPECT_FALSE(sampler.begin_exchange().has_value());
}

TEST(PeerSampler, AnswerNeverContainsRequester) {
  PeerSampler sampler(9, 4, 4, Rng(4));
  const std::vector<net::NodeId> seeds{1, 2, 3, 4};
  sampler.initialize(seeds);
  std::vector<PeerSampler::Descriptor> received{{7, 0}};
  const auto answer = sampler.answer_exchange(2, received);
  for (const auto& d : answer) EXPECT_NE(d.id, 2u);
  EXPECT_TRUE(sampler.contains(7));  // merged the incoming descriptor
}

TEST(PeerSampler, ViewNeverExceedsCapacityAndStaysFresh) {
  PeerSampler sampler(9, 3, 2, Rng(5));
  const std::vector<net::NodeId> seeds{1, 2, 3};
  sampler.initialize(seeds);
  std::vector<PeerSampler::Descriptor> incoming{{4, 1}, {5, 2}, {6, 0}};
  (void)sampler.answer_exchange(1, incoming);
  EXPECT_LE(sampler.view().size(), 3u);
}

TEST(PeerSampler, GossipConvergesToConnectedViews) {
  // 40 samplers, ring-seeded; after enough exchanges, the union of views
  // forms a connected directed graph over all nodes and views churn away
  // from the initial ring (random-graph behaviour Cyclon is known for).
  const std::size_t n = 40;
  std::vector<PeerSampler> samplers;
  Rng rng(6);
  for (net::NodeId v = 0; v < n; ++v) {
    samplers.emplace_back(v, 6, 3, rng.fork(v));
    std::vector<net::NodeId> seeds;
    for (std::size_t i = 1; i <= 6; ++i) {
      seeds.push_back(static_cast<net::NodeId>((v + i) % n));
    }
    samplers[v].initialize(seeds);
  }
  for (int round = 0; round < 50; ++round) {
    for (net::NodeId v = 0; v < n; ++v) {
      auto ex = samplers[v].begin_exchange();
      if (!ex) continue;
      const auto answer = samplers[ex->partner].answer_exchange(v, ex->sent);
      samplers[v].complete_exchange(*ex, answer);
    }
  }
  // Union reachability from node 0 over view edges.
  std::set<net::NodeId> reached{0};
  std::vector<net::NodeId> frontier{0};
  while (!frontier.empty()) {
    const net::NodeId v = frontier.back();
    frontier.pop_back();
    for (const auto& d : samplers[v].view()) {
      if (reached.insert(d.id).second) frontier.push_back(d.id);
    }
  }
  EXPECT_EQ(reached.size(), n);
  // Views hold fresh-ish descriptors (ages bounded by shuffling).
  for (const auto& s : samplers) {
    EXPECT_GE(s.view().size(), 3u);
  }
}

// --- Epochs -----------------------------------------------------------------

TEST(InducedSubgraph, MapsIdsAndEdges) {
  const net::Topology topo = test_topology(20);
  std::vector<bool> active(20, true);
  active[3] = active[7] = false;
  std::vector<net::NodeId> global_of;
  const net::Graph sub = induced_subgraph(topo.graph, active, &global_of);
  EXPECT_EQ(sub.node_count(), 18u);
  EXPECT_EQ(global_of.size(), 18u);
  for (net::NodeId g : global_of) {
    EXPECT_NE(g, 3u);
    EXPECT_NE(g, 7u);
  }
  // Every subgraph edge corresponds to a physical edge with same latency.
  for (net::NodeId a = 0; a < sub.node_count(); ++a) {
    for (const net::Edge& e : sub.neighbors(a)) {
      const auto lat = topo.graph.edge_latency(global_of[a], global_of[e.to]);
      ASSERT_TRUE(lat.has_value());
      EXPECT_DOUBLE_EQ(*lat, e.latency_ms);
    }
  }
}

overlay::BuilderParams fast_builder() {
  overlay::BuilderParams params;
  params.f = 1;
  params.k = 3;
  params.annealing.initial_temperature = 5.0;
  params.annealing.min_temperature = 1.0;
  params.annealing.cooling_rate = 0.8;
  params.annealing.moves_per_temperature = 4;
  return params;
}

TEST(EpochManager, InitialEpochCoversAllNodes) {
  const net::Topology topo = test_topology();
  EpochManager manager(topo.graph, fast_builder(), 1234);
  EXPECT_EQ(manager.epoch(), 0u);
  EXPECT_EQ(manager.active_count(), 60u);
  EXPECT_EQ(manager.overlays().set.overlays.size(), 3u);
  for (const auto& ov : manager.overlays().set.overlays) {
    EXPECT_TRUE(ov.is_valid());
  }
}

TEST(EpochManager, LeaveAndRejoinRebuildValidOverlays) {
  const net::Topology topo = test_topology();
  EpochManager manager(topo.graph, fast_builder(), 1234);

  const std::vector<net::NodeId> leavers{5, 17, 33};
  manager.advance_epoch({}, leavers);
  EXPECT_EQ(manager.epoch(), 1u);
  EXPECT_EQ(manager.active_count(), 57u);
  EXPECT_EQ(manager.overlays().global_of.size(), 57u);
  for (net::NodeId leaver : leavers) {
    EXPECT_FALSE(manager.overlays().compact_of(leaver).has_value());
  }
  for (const auto& ov : manager.overlays().set.overlays) {
    EXPECT_TRUE(ov.is_valid());
    EXPECT_EQ(ov.node_count(), 57u);
  }

  manager.advance_epoch(leavers, {});
  EXPECT_EQ(manager.active_count(), 60u);
  EXPECT_TRUE(manager.overlays().compact_of(5).has_value());
}

TEST(EpochManager, DeterministicPerEpochSeed) {
  const net::Topology topo = test_topology();
  EpochManager a(topo.graph, fast_builder(), 42);
  EpochManager b(topo.graph, fast_builder(), 42);
  a.advance_epoch({}, std::vector<net::NodeId>{2});
  b.advance_epoch({}, std::vector<net::NodeId>{2});
  for (std::size_t l = 0; l < 3; ++l) {
    const auto& oa = a.overlays().set.overlays[l];
    const auto& ob = b.overlays().set.overlays[l];
    ASSERT_EQ(oa.edge_count(), ob.edge_count());
    for (net::NodeId v = 0; v < oa.node_count(); ++v) {
      ASSERT_EQ(oa.successors(v), ob.successors(v));
    }
  }
}

TEST(EpochManager, EntryPointLeaveIsHandled) {
  // Section VII-B's special case: an entry point leaving forces a new
  // election — here simply the next epoch's rebuild.
  const net::Topology topo = test_topology();
  EpochManager manager(topo.graph, fast_builder(), 7);
  const auto& first_overlay = manager.overlays().set.overlays[0];
  const net::NodeId entry_global =
      manager.overlays().global_of[first_overlay.entry_points()[0]];
  manager.advance_epoch({}, std::vector<net::NodeId>{entry_global});
  for (const auto& ov : manager.overlays().set.overlays) {
    EXPECT_TRUE(ov.is_valid());
    for (net::NodeId e : ov.entry_points()) {
      EXPECT_NE(manager.overlays().global_of[e], entry_global);
    }
  }
}

}  // namespace
}  // namespace hermes::hermes_proto
