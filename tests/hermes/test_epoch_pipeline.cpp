// Background epoch pipeline: hysteresis, bounded delta queue,
// invalidation/retry backoff (unit level, with a hand-driven scheduler),
// plus end-to-end pipelined epoch transitions through the fuzz runner —
// leave/rejoin waves absorbed by warm background rebuilds with zero
// stop-the-world advances and worker-count-invariant traces.
#include "hermes/epoch_pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"

namespace hermes::hermes_proto {
namespace {

// Hand-driven scheduler: captures (delay, fn) pairs; the test fires them.
struct Harness {
  std::vector<std::pair<double, std::function<void()>>> scheduled;
  std::vector<std::vector<MembershipDelta>> installs;

  EpochPipeline make(EpochPipeline::Params p) {
    return EpochPipeline(
        p,
        [this](double delay, std::function<void()> fn) {
          scheduled.emplace_back(delay, std::move(fn));
        },
        [this](const std::vector<MembershipDelta>& deltas) {
          installs.push_back(deltas);
        });
  }

  void fire() {
    ASSERT_FALSE(scheduled.empty());
    auto fn = std::move(scheduled.back().second);
    scheduled.pop_back();
    fn();
  }
};

EpochPipeline::Params params(std::size_t hysteresis = 3,
                             std::size_t cap = 64) {
  EpochPipeline::Params p;
  p.queue_cap = cap;
  p.hysteresis = hysteresis;
  p.anneal_ms = 100.0;
  p.retry_backoff = 2.0;
  p.retry_max_ms = 350.0;
  p.max_retries = 3;
  return p;
}

TEST(EpochPipeline, HysteresisAbsorbsSmallDeltasIncrementally) {
  Harness h;
  EpochPipeline p = h.make(params(3));
  p.on_membership_change({5, false});
  p.on_membership_change({5, true});
  EXPECT_FALSE(p.annealing());
  EXPECT_TRUE(h.scheduled.empty());
  EXPECT_EQ(p.absorbed_incrementally(), 2u);
  EXPECT_EQ(p.queued(), 2u);

  // The third delta crosses the hysteresis: background anneal starts.
  p.on_membership_change({7, false});
  EXPECT_TRUE(p.annealing());
  ASSERT_EQ(h.scheduled.size(), 1u);
  EXPECT_EQ(h.scheduled[0].first, 100.0);

  h.fire();
  EXPECT_FALSE(p.annealing());
  EXPECT_EQ(p.pipelined_installs(), 1u);
  EXPECT_EQ(p.queued(), 0u);  // folded into the install
  ASSERT_EQ(h.installs.size(), 1u);
  EXPECT_EQ(h.installs[0].size(), 3u);
  EXPECT_EQ(h.installs[0][2].node, 7u);
}

TEST(EpochPipeline, MidAnnealChurnInvalidatesAndRetriesWithBackoff) {
  Harness h;
  EpochPipeline p = h.make(params(1));
  p.on_membership_change({1, false});  // starts the anneal immediately
  ASSERT_EQ(h.scheduled.size(), 1u);

  p.on_membership_change({2, false});  // lands mid-anneal
  EXPECT_EQ(p.absorbed_incrementally(), 0u);  // not absorbed: queued for e+1
  h.fire();
  EXPECT_EQ(p.invalidations(), 1u);
  EXPECT_TRUE(p.annealing());
  ASSERT_EQ(h.scheduled.size(), 1u);
  EXPECT_EQ(h.scheduled[0].first, 200.0);  // anneal_ms * backoff^1

  p.on_membership_change({3, true});  // again mid-retry
  h.fire();
  EXPECT_EQ(p.invalidations(), 2u);
  ASSERT_EQ(h.scheduled.size(), 1u);
  EXPECT_EQ(h.scheduled[0].first, 350.0);  // backoff^2 capped at retry_max_ms

  h.fire();  // quiet this time: the pipelined epoch lands
  EXPECT_FALSE(p.annealing());
  EXPECT_EQ(p.pipelined_installs(), 1u);
  ASSERT_EQ(h.installs.size(), 1u);
  EXPECT_EQ(h.installs[0].size(), 3u);  // all three deltas folded
}

TEST(EpochPipeline, RetryCapInstallsDespiteSustainedChurn) {
  Harness h;
  EpochPipeline p = h.make(params(1));
  p.on_membership_change({1, false});
  net::NodeId next = 2;
  for (std::size_t retry = 0; retry < 3; ++retry) {
    p.on_membership_change({next++, false});  // invalidate every attempt
    h.fire();
  }
  EXPECT_EQ(p.invalidations(), 3u);
  p.on_membership_change({next, false});  // still churning...
  h.fire();                               // ...but the retry cap is spent
  EXPECT_EQ(p.pipelined_installs(), 1u);
  EXPECT_FALSE(p.annealing());
  ASSERT_EQ(h.installs.size(), 1u);
  EXPECT_EQ(h.installs[0].size(), 5u);
}

TEST(EpochPipeline, QueueCapDropsOldestDelta) {
  Harness h;
  EpochPipeline p = h.make(params(/*hysteresis=*/100, /*cap=*/4));
  for (net::NodeId v = 0; v < 6; ++v) p.on_membership_change({v, false});
  EXPECT_EQ(p.queued(), 4u);
  EXPECT_EQ(p.dropped_deltas(), 2u);
}

// --- end-to-end: the full protocol under leave/rejoin waves.

// A compact storm scenario: the first benign HERMES seed with the fallback
// on, churn layer enabled, two waves of f leave/rejoin churn with
// keepalive traffic inside the crash windows (silence strikes need
// ongoing overlay traffic to convict the crashed node).
fuzz::Scenario storm_scenario() {
  std::uint64_t seed = 1;
  fuzz::Scenario s = fuzz::generate_scenario(seed, false);
  while (!(s.hermes() && s.benign() && s.enable_fallback)) {
    s = fuzz::generate_scenario(++seed, false);
  }
  s.self_healing = true;
  s.join_admission = true;
  s.epoch_pipeline = true;
  std::vector<net::NodeId> exempt = s.committee;
  for (const fuzz::Injection& inj : s.injections) exempt.push_back(inj.sender);
  std::vector<net::NodeId> victims;
  for (net::NodeId v = 0; v < s.nodes && victims.size() < s.f; ++v) {
    if (std::find(exempt.begin(), exempt.end(), v) == exempt.end()) {
      victims.push_back(v);
    }
  }
  double wt = 0.0;
  for (const fuzz::Injection& inj : s.injections) wt = std::max(wt, inj.at_ms);
  wt += 300.0;
  for (int wave = 0; wave < 2; ++wave) {
    fuzz::ChurnEvent crash;
    crash.at_ms = wt;
    crash.nodes = victims;
    s.churn.push_back(crash);
    for (double off : {150.0, 400.0, 650.0, 900.0, 1150.0}) {
      fuzz::Injection pulse;
      pulse.at_ms = wt + off;
      pulse.sender = s.injections.front().sender;
      s.injections.push_back(pulse);
    }
    fuzz::ChurnEvent rejoin;
    rejoin.at_ms = wt + 1800.0;
    rejoin.recover = true;
    rejoin.rejoin = true;
    rejoin.nodes = victims;
    s.churn.push_back(rejoin);
    wt = rejoin.at_ms + 1200.0;
  }
  s.drain_ms = std::max(s.drain_ms, 14000.0);
  return s;
}

TEST(EpochPipelineEndToEnd, WavesAbsorbedByPipelinedInstallsOnly) {
  const fuzz::Scenario s = storm_scenario();
  const fuzz::RunResult r = fuzz::run_scenario(s);
  EXPECT_TRUE(r.ok()) << (r.failures.empty()
                              ? ""
                              : r.failures[0].checker + ": " +
                                    r.failures[0].detail);
  EXPECT_GE(r.pipelined_installs, 2u);
  EXPECT_EQ(r.stop_the_world_advances, 0u)
      << "join/leave waves must never trigger a stop-the-world re-anneal";
}

TEST(EpochPipelineEndToEnd, TraceInvariantAcrossWorkerCounts) {
  const fuzz::Scenario s = storm_scenario();
  fuzz::RunOptions opts;
  opts.workers = 1;
  const fuzz::RunResult base = fuzz::run_scenario(s, opts);
  ASSERT_TRUE(base.ok());
  for (std::size_t workers : {2u, 4u}) {
    opts.workers = workers;
    const fuzz::RunResult r = fuzz::run_scenario(s, opts);
    EXPECT_EQ(r.trace_hash, base.trace_hash) << "workers=" << workers;
    EXPECT_EQ(r.pipelined_installs, base.pipelined_installs);
  }
}

// The feature is dark by default: a scenario without the churn layer keeps
// every pipeline counter at zero.
TEST(EpochPipelineEndToEnd, InertWhenDisabled) {
  std::uint64_t seed = 1;
  fuzz::Scenario s = fuzz::generate_scenario(seed, false);
  while (!s.hermes()) s = fuzz::generate_scenario(++seed, false);
  const fuzz::RunResult r = fuzz::run_scenario(s);
  EXPECT_EQ(r.pipelined_installs, 0u);
  EXPECT_EQ(r.pipeline_invalidations, 0u);
  EXPECT_EQ(r.deltas_absorbed, 0u);
}

}  // namespace
}  // namespace hermes::hermes_proto
