// Fault-injection tests: crashes mid-dissemination, jittery links, and
// combinations — the "keep iterating past green" hardening pass.
#include <gtest/gtest.h>

#include "../protocols/harness.hpp"
#include "hermes/hermes_node.hpp"

namespace hermes::hermes_proto {
namespace {

using protocols::honest_coverage;
using protocols::inject_tx;
using protocols::testing::World;

HermesConfig fast_config(std::size_t f = 1, std::size_t k = 4) {
  HermesConfig config;
  config.f = f;
  config.k = k;
  config.builder.annealing.initial_temperature = 5.0;
  config.builder.annealing.min_temperature = 1.0;
  config.builder.annealing.cooling_rate = 0.8;
  config.builder.annealing.moves_per_temperature = 4;
  return config;
}

TEST(FaultInjection, EntryPointCrashMidDissemination) {
  HermesProtocol protocol(fast_config());
  World w(40, protocol, 700);
  w.start();
  const auto tx = w.send_from(6);
  // Let the TRS complete and the first overlay hops fire, then crash one
  // entry point of every overlay.
  w.run_ms(450.0);
  for (const auto& ov : protocol.shared()->overlays) {
    w.ctx->network.set_crashed(ov.entry_points()[0], true);
  }
  w.run_ms(10000);
  // The f+1 redundancy (second entry point) plus fallback carry it.
  std::size_t reached = 0, alive = 0;
  for (net::NodeId v = 0; v < 40; ++v) {
    if (w.ctx->network.is_crashed(v)) continue;
    ++alive;
    if (w.ctx->tracker.delivered(tx.id, v)) ++reached;
  }
  EXPECT_GE(reached + 1, alive);  // +1: the sender itself counts as reached
}

TEST(FaultInjection, CommitteeMemberCrashAfterStart) {
  HermesProtocol protocol(fast_config());
  World w(40, protocol, 701);
  w.start();
  // First tx with the full committee.
  const auto tx1 = w.send_from(3);
  w.run_ms(5000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx1), 1.0);
  // Crash one committee member (f = 1 tolerated), then send again.
  w.ctx->network.set_crashed(protocol.shared()->committee[0], true);
  const auto tx2 = w.send_from(3);
  w.run_ms(8000);
  std::size_t reached = 0, alive = 0;
  for (net::NodeId v = 0; v < 40; ++v) {
    if (w.ctx->network.is_crashed(v) || v == 3) continue;
    ++alive;
    if (w.ctx->tracker.delivered(tx2.id, v)) ++reached;
  }
  EXPECT_EQ(reached, alive);
}

TEST(FaultInjection, JitteryLinksStillDeliverInOrderPerSender) {
  sim::NetworkParams jittery;
  jittery.jitter_stddev_ms = 30.0;
  HermesProtocol protocol(fast_config());
  World w(30, protocol, 702, jittery);
  w.start();
  std::vector<protocols::Transaction> txs;
  for (int i = 0; i < 3; ++i) {
    txs.push_back(w.send_from(5));
    w.run_ms(200.0);
  }
  w.run_ms(8000);
  for (const auto& tx : txs) {
    EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0) << tx.sender_seq;
  }
  // The committee's sequence rule held despite jitter: every node's
  // arrival log has the sender's txs (order may legitimately vary since
  // each tx rode a different overlay).
  for (net::NodeId v = 0; v < 30; ++v) {
    for (const auto& tx : txs) {
      EXPECT_TRUE(w.ctx->node(v).pool().contains(tx.id));
    }
  }
}

TEST(FaultInjection, CrashAndHealPartitionWithJitterAndLoss) {
  sim::NetworkParams rough;
  rough.jitter_stddev_ms = 15.0;
  rough.drop_probability = 0.05;
  HermesProtocol protocol(fast_config());
  World w(40, protocol, 703, rough);
  w.start();
  std::vector<int> split(40, 0);
  for (net::NodeId v = 20; v < 40; ++v) split[v] = 1;
  // Sender and committee sides may straddle the split; HERMES cannot make
  // progress across, but must recover fully after healing.
  w.ctx->network.set_partition(split);
  const auto tx = w.send_from(2);
  w.run_ms(3000);
  w.ctx->network.heal_partition();
  w.run_ms(15000);
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.95);
}

}  // namespace
}  // namespace hermes::hermes_proto
