#include "hermes/trs.hpp"

#include <gtest/gtest.h>

#include "crypto/sim_signer.hpp"

namespace hermes::hermes_proto {
namespace {

TrsId make_id(net::NodeId origin = 3, std::uint64_t seq = 1) {
  TrsId id;
  id.origin = origin;
  id.seq = seq;
  id.tx_hash = crypto::sha256("tx-" + std::to_string(origin) + "-" +
                              std::to_string(seq));
  return id;
}

TEST(TrsId, SignedMessageBindsAllFields) {
  const TrsId a = make_id(1, 1);
  const TrsId b = make_id(1, 2);
  const TrsId c = make_id(2, 1);
  EXPECT_NE(a.signed_message(), b.signed_message());
  EXPECT_NE(a.signed_message(), c.signed_message());
  EXPECT_EQ(a.signed_message(), make_id(1, 1).signed_message());
  EXPECT_NE(a.key(), b.key());
}

TEST(Bracha, EchoThresholdTriggersReady) {
  BrachaState state(1);  // f=1: 2f+1 = 3 echoes
  EXPECT_FALSE(state.on_echo(1));
  EXPECT_FALSE(state.on_echo(2));
  EXPECT_TRUE(state.on_echo(3));
  EXPECT_TRUE(state.readied());
  // Further echoes do not re-trigger.
  EXPECT_FALSE(state.on_echo(4));
}

TEST(Bracha, DuplicateEchoesNotDoubleCounted) {
  BrachaState state(1);
  EXPECT_FALSE(state.on_echo(1));
  EXPECT_FALSE(state.on_echo(1));
  EXPECT_FALSE(state.on_echo(1));
  EXPECT_EQ(state.echo_count(), 1u);
  EXPECT_FALSE(state.readied());
}

TEST(Bracha, ReadyAmplification) {
  BrachaState state(1);  // f+1 = 2 readies trigger own ready
  EXPECT_FALSE(state.on_ready(1));
  EXPECT_TRUE(state.on_ready(2));
  EXPECT_TRUE(state.readied());
}

TEST(Bracha, DeliveryAtTwoFPlusOneReadies) {
  BrachaState state(1);
  state.on_ready(1);
  state.on_ready(2);
  EXPECT_FALSE(state.try_deliver());
  state.on_ready(3);
  EXPECT_TRUE(state.try_deliver());
  EXPECT_TRUE(state.delivered());
  EXPECT_FALSE(state.try_deliver());  // only once
}

TEST(Bracha, RequestEchoesOnce) {
  BrachaState state(2);
  EXPECT_TRUE(state.on_request());
  EXPECT_FALSE(state.on_request());
}

TEST(CommitteeMember, SequenceEnforcement) {
  TrsCommitteeMember member(1, 1);
  EXPECT_EQ(member.next_expected(9), 1u);
  EXPECT_EQ(member.check_sequence(9, 1), TrsCommitteeMember::SeqCheck::kInOrder);
  EXPECT_EQ(member.check_sequence(9, 2), TrsCommitteeMember::SeqCheck::kFuture);
  member.mark_delivered(9, 1);
  EXPECT_EQ(member.next_expected(9), 2u);
  EXPECT_EQ(member.check_sequence(9, 1),
            TrsCommitteeMember::SeqCheck::kDuplicate);
  EXPECT_EQ(member.check_sequence(9, 2), TrsCommitteeMember::SeqCheck::kInOrder);
}

TEST(CommitteeMember, OutOfOrderDeliveryDoesNotAdvance) {
  TrsCommitteeMember member(1, 1);
  member.mark_delivered(9, 3);  // skipped: must not advance
  EXPECT_EQ(member.next_expected(9), 1u);
}

TEST(CommitteeMember, PerOriginIsolation) {
  TrsCommitteeMember member(1, 1);
  member.mark_delivered(1, 1);
  EXPECT_EQ(member.next_expected(1), 2u);
  EXPECT_EQ(member.next_expected(2), 1u);
}

TEST(Collector, CombinesAtThreshold) {
  const crypto::SimThresholdScheme scheme(to_bytes("grp"), 4, 3);
  TrsCollector collector(scheme);
  const TrsId id = make_id();
  const Bytes msg = id.signed_message();
  EXPECT_FALSE(collector.add_partial(id, scheme.partial_sign(1, msg)));
  EXPECT_FALSE(collector.add_partial(id, scheme.partial_sign(2, msg)));
  const auto combined = collector.add_partial(id, scheme.partial_sign(3, msg));
  ASSERT_TRUE(combined.has_value());
  EXPECT_TRUE(scheme.verify_combined(msg, *combined));
  EXPECT_TRUE(collector.done(id));
  // Late partials are ignored after combination.
  EXPECT_FALSE(collector.add_partial(id, scheme.partial_sign(4, msg)));
}

TEST(Collector, RejectsInvalidAndDuplicatePartials) {
  const crypto::SimThresholdScheme scheme(to_bytes("grp"), 4, 3);
  TrsCollector collector(scheme);
  const TrsId id = make_id();
  const Bytes msg = id.signed_message();
  auto p1 = scheme.partial_sign(1, msg);
  EXPECT_FALSE(collector.add_partial(id, p1));
  EXPECT_FALSE(collector.add_partial(id, p1));  // duplicate index
  auto forged = scheme.partial_sign(2, msg);
  forged.bytes[0] ^= 1;
  EXPECT_FALSE(collector.add_partial(id, forged));
  EXPECT_FALSE(collector.add_partial(id, scheme.partial_sign(2, msg)));
  // Still needs a third distinct valid partial.
  EXPECT_TRUE(collector.add_partial(id, scheme.partial_sign(4, msg)).has_value());
}

TEST(OverlaySelection, DeterministicAndVerifiable) {
  const crypto::SimThresholdScheme scheme(to_bytes("grp"), 4, 3);
  const TrsId id = make_id();
  const Bytes msg = id.signed_message();
  std::vector<crypto::PartialSignature> partials;
  for (std::size_t i = 1; i <= 3; ++i) partials.push_back(scheme.partial_sign(i, msg));
  const auto sig = scheme.combine(msg, partials);
  ASSERT_TRUE(sig.has_value());
  const std::size_t k = 10;
  const std::size_t choice = select_overlay(*sig, k);
  EXPECT_LT(choice, k);
  EXPECT_TRUE(verify_overlay_choice(scheme, id, *sig, choice, k));
  EXPECT_FALSE(verify_overlay_choice(scheme, id, *sig, (choice + 1) % k, k));
}

TEST(OverlaySelection, RejectsForgedSignature) {
  const crypto::SimThresholdScheme scheme(to_bytes("grp"), 4, 3);
  const TrsId id = make_id();
  Bytes forged(32, 0xab);
  EXPECT_FALSE(verify_overlay_choice(scheme, id, forged,
                                     select_overlay(forged, 10), 10));
}

TEST(OverlaySelection, SpreadsAcrossOverlays) {
  const crypto::SimThresholdScheme scheme(to_bytes("grp"), 4, 3);
  constexpr std::size_t k = 10;
  std::array<int, k> buckets{};
  for (std::uint64_t seq = 1; seq <= 500; ++seq) {
    const TrsId id = make_id(7, seq);
    const Bytes msg = id.signed_message();
    std::vector<crypto::PartialSignature> partials;
    for (std::size_t i = 1; i <= 3; ++i) {
      partials.push_back(scheme.partial_sign(i, msg));
    }
    const auto sig = scheme.combine(msg, partials);
    ASSERT_TRUE(sig.has_value());
    buckets[select_overlay(*sig, k)] += 1;
  }
  for (int count : buckets) {
    EXPECT_GT(count, 20);  // roughly uniform over 500 draws
    EXPECT_LT(count, 100);
  }
}

}  // namespace
}  // namespace hermes::hermes_proto
