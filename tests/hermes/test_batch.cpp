// Erasure-coded batch dissemination tests (Section VIII-D extension).
#include <gtest/gtest.h>

#include "../protocols/harness.hpp"
#include "hermes/hermes_node.hpp"

namespace hermes::hermes_proto {
namespace {

using protocols::Behavior;
using protocols::Transaction;
using protocols::testing::World;

HermesConfig batch_config(std::size_t f = 1, std::size_t k = 5) {
  HermesConfig config;
  config.f = f;
  config.k = k;
  config.batch_data_chunks = 3;
  config.builder.annealing.initial_temperature = 5.0;
  config.builder.annealing.min_temperature = 1.0;
  config.builder.annealing.cooling_rate = 0.8;
  config.builder.annealing.moves_per_temperature = 4;
  return config;
}

// Batch member transactions live in their own id namespace (high bit set):
// the committee sequences the *batch*, not its members, so member ids must
// not consume the sender's TRS-facing sequence counter.
std::vector<Transaction> make_batch(World& w, net::NodeId sender,
                                    std::size_t count) {
  static std::uint64_t next_member_seq = 0x800000;
  std::vector<Transaction> txs;
  for (std::size_t i = 0; i < count; ++i) {
    Transaction tx;
    tx.sender = sender;
    tx.sender_seq = ++next_member_seq;
    tx.id = mempool::Transaction::make_id(sender, tx.sender_seq);
    tx.created_at = w.ctx->engine.now();
    w.ctx->tracker.on_created(tx.id, tx.created_at);
    txs.push_back(tx);
  }
  return txs;
}

TEST(BatchSerialization, RoundTrip) {
  Transaction a;
  a.sender = 3;
  a.sender_seq = 7;
  a.id = mempool::Transaction::make_id(3, 7);
  a.payload_bytes = 250;
  Transaction b;
  b.sender = 9;
  b.sender_seq = 1;
  b.id = mempool::Transaction::make_id(9, 1);
  b.payload_bytes = 100;
  b.adversarial = true;
  b.victim_id = a.id;
  const std::vector<Transaction> batch{a, b};
  const Bytes encoded = mempool::serialize_batch(batch);
  const auto decoded = mempool::deserialize_batch(encoded);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].id, a.id);
  EXPECT_EQ((*decoded)[1].victim_id, a.id);
  EXPECT_TRUE((*decoded)[1].adversarial);
  EXPECT_EQ((*decoded)[0].payload_bytes, 250u);
}

TEST(BatchSerialization, RejectsTruncation) {
  Transaction a;
  a.id = 1;
  Bytes encoded = mempool::serialize_batch(std::vector<Transaction>{a});
  encoded.pop_back();
  EXPECT_FALSE(mempool::deserialize_batch(encoded).has_value());
}

TEST(BatchSerialization, HashBindsContent) {
  Transaction a;
  a.id = 1;
  Transaction b;
  b.id = 2;
  const std::vector<Transaction> one{a};
  const std::vector<Transaction> two{a, b};
  EXPECT_NE(mempool::batch_hash(one), mempool::batch_hash(two));
}

TEST(HermesBatch, DeliversWholeBatchToEveryone) {
  HermesProtocol protocol(batch_config());
  World w(40, protocol);
  w.start();
  auto* sender = dynamic_cast<HermesNode*>(&w.ctx->node(4));
  const auto txs = make_batch(w, 4, 10);
  sender->submit_batch(txs);
  w.run_ms(8000);
  for (const auto& tx : txs) {
    EXPECT_DOUBLE_EQ(protocols::honest_coverage(*w.ctx, tx), 1.0) << tx.id;
  }
  // Everyone decoded exactly one batch.
  for (net::NodeId v = 0; v < 40; ++v) {
    EXPECT_EQ(static_cast<const HermesNode&>(w.ctx->node(v)).batches_decoded(),
              1u)
        << v;
  }
}

TEST(HermesBatch, SurvivesLossOfParityManyShards) {
  // f parity shards: even if one overlay's whole stream dies (droppers at
  // its entries), the batch reconstructs from the remaining shards.
  HermesProtocol protocol(batch_config(1, 5));
  World w(50, protocol, 21);
  w.start();
  // Kill one overlay stream: make all entries of overlay (seed+?) droppers.
  // We cannot know the seed-selected overlay upfront, so instead drop one
  // fixed node from each overlay's entry set — at most one shard stream is
  // degraded, within the parity budget.
  const auto shared = protocol.shared();
  w.ctx->behaviors[shared->overlays[0].entry_points()[0]] = Behavior::kDropper;
  auto* sender = dynamic_cast<HermesNode*>(
      &w.ctx->node(w.ctx->random_honest(w.ctx->rng)));
  const auto txs = make_batch(w, sender->id(), 8);
  sender->submit_batch(txs);
  w.run_ms(8000);
  double covered = 0.0;
  for (const auto& tx : txs) covered += protocols::honest_coverage(*w.ctx, tx);
  EXPECT_GT(covered / static_cast<double>(txs.size()), 0.97);
}

TEST(HermesBatch, CheaperPerTransactionThanUnbatched) {
  const std::size_t kTxs = 12;
  // Batched run.
  HermesProtocol batched(batch_config());
  World wb(40, batched, 31);
  wb.start();
  auto* sender = dynamic_cast<HermesNode*>(&wb.ctx->node(2));
  sender->submit_batch(make_batch(wb, 2, kTxs));
  wb.run_ms(8000);
  const auto batched_bytes = wb.ctx->network.total().bytes_sent;

  // Unbatched run: same txs one by one.
  HermesProtocol plain(batch_config());
  World wp(40, plain, 31);
  wp.start();
  for (std::size_t i = 0; i < kTxs; ++i) {
    protocols::inject_tx(*wp.ctx, 2);
    wp.run_ms(50);
  }
  wp.run_ms(8000);
  const auto plain_bytes = wp.ctx->network.total().bytes_sent;

  // Chunking spreads each overlay's share to ~1/data_chunks of the batch:
  // total payload bytes moved should shrink meaningfully.
  EXPECT_LT(batched_bytes, plain_bytes);
}

TEST(HermesBatch, ChunkWithBadCertificateIsFlaggedAndDropped) {
  HermesProtocol protocol(batch_config());
  World w(30, protocol);
  w.start();
  // Craft a forged chunk from node 7 to node 8.
  auto* attacker = dynamic_cast<HermesNode*>(&w.ctx->node(7));
  (void)attacker;
  auto body = std::make_shared<BatchChunkBody>();
  body->trs = TrsId{7, 1, crypto::sha256("forged batch")};
  body->certificate = to_bytes("not a signature");
  body->base_overlay = 0;
  body->data_shards = 2;
  body->total_shards = 3;
  body->shard_wire_bytes = 100;
  body->shard.index = 0;
  body->shard.bytes = to_bytes("junk");
  sim::Message msg;
  msg.src = 7;
  msg.dst = 8;
  msg.type = HermesNode::kMsgBatchChunk;
  msg.wire_bytes = 100;
  msg.body = body;
  auto* receiver = dynamic_cast<HermesNode*>(&w.ctx->node(8));
  receiver->on_message(msg);
  EXPECT_EQ(receiver->audit().count_of(ViolationKind::kBadCertificate), 1u);
  EXPECT_TRUE(receiver->audit().is_excluded(7));
  EXPECT_EQ(receiver->batches_decoded(), 0u);
}

TEST(HermesBatch, SequenceSharedWithSingleTxStream) {
  // A batch consumes one sequence number: a following single tx must use
  // the next one and still flow.
  HermesProtocol protocol(batch_config());
  World w(30, protocol);
  w.start();
  auto* sender = dynamic_cast<HermesNode*>(&w.ctx->node(5));
  sender->submit_batch(make_batch(w, 5, 4));
  w.run_ms(4000);
  const auto tx = w.send_from(5);
  w.run_ms(5000);
  EXPECT_DOUBLE_EQ(protocols::honest_coverage(*w.ctx, tx), 1.0);
}

}  // namespace
}  // namespace hermes::hermes_proto
