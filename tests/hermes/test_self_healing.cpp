// End-to-end self-healing loop (detect -> repair -> recover): silent
// predecessors earn departure reports, f+1 reports converge every honest
// node on the same locally repaired trees, dissemination keeps working
// around the hole, and sustained degradation triggers a committee view
// change. Also covers the TRS give-up path (the "detect" feed for a dead
// committee).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "../protocols/harness.hpp"
#include "hermes/hermes_node.hpp"
#include "overlay/encoding.hpp"

namespace hermes::hermes_proto {
namespace {

using protocols::honest_coverage;
using protocols::inject_tx;
using protocols::testing::World;

HermesConfig healing_config() {
  HermesConfig config;
  config.f = 1;
  config.k = 2;  // concentrate traffic so silence evidence accrues fast
  config.enable_self_healing = true;
  config.health_tick_ms = 250.0;
  // Min-degree-5 worlds: fanout 6 floods every neighbor, so report spread
  // is a connectivity fact rather than a gossip coin flip.
  config.report_fanout = 6;
  config.builder.annealing.initial_temperature = 5.0;
  config.builder.annealing.min_temperature = 1.0;
  config.builder.annealing.cooling_rate = 0.8;
  config.builder.annealing.moves_per_temperature = 4;
  return config;
}

const HermesNode& hermes_at(World& w, net::NodeId v) {
  return static_cast<const HermesNode&>(w.ctx->node(v));
}

net::NodeId pick_sender(const HermesShared& shared) {
  net::NodeId v = 0;
  while (shared.is_committee_member(v)) ++v;
  return v;
}

// A non-committee node that relays for someone in at least one overlay —
// its successors are the witnesses whose silence strikes add up.
net::NodeId pick_internal_victim(const HermesShared& shared,
                                 net::NodeId avoid) {
  for (net::NodeId v = 0; v < shared.overlays[0].node_count(); ++v) {
    if (v == avoid || shared.is_committee_member(v)) continue;
    for (const auto& ov : shared.overlays) {
      if (!ov.successors(v).empty()) return v;
    }
  }
  return net::NodeId(-1);
}

TEST(SelfHealing, CrashedRelayIsDetectedRemovedAndRepairedAround) {
  HermesProtocol protocol(healing_config());
  World w(30, protocol, 11);
  w.start();
  const net::NodeId sender = pick_sender(*protocol.shared());
  const net::NodeId victim = pick_internal_victim(*protocol.shared(), sender);
  ASSERT_NE(victim, net::NodeId(-1));

  // Steady traffic keeps both trees warm, then the victim goes silent.
  for (int i = 0; i < 5; ++i) {
    inject_tx(*w.ctx, sender);
    w.run_ms(100);
  }
  w.crash(victim);
  for (int i = 0; i < 30; ++i) {
    inject_tx(*w.ctx, sender);
    w.run_ms(100);
  }
  w.run_ms(3000);  // let reports gossip and repairs settle

  // Detection: the victim's former successors filed signed reports...
  std::size_t reports = 0;
  for (net::NodeId v = 0; v < 30; ++v) {
    if (v == victim) continue;
    reports += hermes_at(w, v).departure_reports_sent();
  }
  EXPECT_GE(reports, protocol.shared()->config.f + 1);
  // ...and f+1 of them convinced every live honest node.
  for (net::NodeId v = 0; v < 30; ++v) {
    if (v == victim) continue;
    EXPECT_EQ(hermes_at(w, v).removed_nodes().count(victim), 1u)
        << "node " << v << " never marked the victim departed";
  }

  // Repair convergence: equal removal sets imply byte-identical repaired
  // trees (the repair is a pure function of pristine trees + removal set).
  std::map<std::string, std::vector<net::NodeId>> groups;
  for (net::NodeId v = 0; v < 30; ++v) {
    if (v == victim) continue;
    std::string key;
    for (net::NodeId r : hermes_at(w, v).removed_nodes()) {
      key += std::to_string(r) + ",";
    }
    groups[key].push_back(v);
  }
  for (const auto& [key, members] : groups) {
    const HermesNode& base = hermes_at(w, members.front());
    for (std::size_t idx = 0; idx < protocol.shared()->overlays.size();
         ++idx) {
      const overlay::Overlay* expect = base.repaired_overlay(idx);
      for (net::NodeId v : members) {
        const overlay::Overlay* got = hermes_at(w, v).repaired_overlay(idx);
        ASSERT_EQ(expect == nullptr, got == nullptr)
            << "node " << v << " overlay " << idx;
        if (expect != nullptr) {
          EXPECT_EQ(overlay::encode_overlay(*expect),
                    overlay::encode_overlay(*got))
              << "node " << v << " overlay " << idx << " repair diverged";
        }
      }
    }
  }
  // The crash actually required surgery on at least one tree.
  bool any_repair = false;
  for (std::size_t idx = 0; idx < protocol.shared()->overlays.size(); ++idx) {
    any_repair |= hermes_at(w, sender).repaired_overlay(idx) != nullptr;
  }
  EXPECT_TRUE(any_repair);

  // Recovery: a transaction injected after the repair reaches every live
  // honest node over the patched trees.
  const auto tx = inject_tx(*w.ctx, sender);
  w.run_ms(5000);
  for (net::NodeId v = 0; v < 30; ++v) {
    if (v == victim || v == sender) continue;
    EXPECT_TRUE(w.ctx->tracker.delivered(tx.id, v)) << "node " << v;
  }
}

TEST(SelfHealing, SustainedDegradationTriggersOneViewChange) {
  HermesConfig config = healing_config();
  // One departure (score 1.0) is enough to vote; the huge cooldown pins the
  // run to at most a single automatic advance.
  config.view_change_threshold = 0.9;
  config.view_change_clear = 0.1;
  config.view_change_cooldown_ms = 1e6;
  HermesProtocol protocol(config);
  World w(30, protocol, 13);
  w.start();
  const net::NodeId sender = pick_sender(*protocol.shared());
  const net::NodeId victim = pick_internal_victim(*protocol.shared(), sender);
  ASSERT_NE(victim, net::NodeId(-1));

  EXPECT_EQ(protocol.auto_advances(), 0u);
  for (int i = 0; i < 5; ++i) {
    inject_tx(*w.ctx, sender);
    w.run_ms(100);
  }
  w.crash(victim);
  for (int i = 0; i < 30; ++i) {
    inject_tx(*w.ctx, sender);
    w.run_ms(100);
  }
  w.run_ms(3000);

  // f+1 committee votes for epoch 0 fired exactly one rebuild.
  EXPECT_EQ(protocol.auto_advances(), 1u);
  EXPECT_EQ(protocol.shared()->epoch, 1u);
  for (net::NodeId v = 0; v < 30; ++v) {
    if (v == victim) continue;
    EXPECT_EQ(hermes_at(w, v).current_epoch(), 1u) << "node " << v;
  }

  // The fresh generation serves traffic normally.
  const auto tx = inject_tx(*w.ctx, sender);
  w.run_ms(5000);
  for (net::NodeId v = 0; v < 30; ++v) {
    if (v == victim || v == sender) continue;
    EXPECT_TRUE(w.ctx->tracker.delivered(tx.id, v)) << "node " << v;
  }
}

TEST(SelfHealing, HealthyRunNeverVotesForViewChange) {
  HermesProtocol protocol(healing_config());
  World w(30, protocol, 17);
  w.start();
  const net::NodeId sender = pick_sender(*protocol.shared());
  for (int i = 0; i < 10; ++i) {
    inject_tx(*w.ctx, sender);
    w.run_ms(200);
  }
  w.run_ms(4000);
  EXPECT_EQ(protocol.auto_advances(), 0u);
  for (net::NodeId v = 0; v < 30; ++v) {
    EXPECT_TRUE(hermes_at(w, v).removed_nodes().empty()) << "node " << v;
    EXPECT_EQ(hermes_at(w, v).departure_reports_sent(), 0u) << "node " << v;
  }
}

TEST(SelfHealing, DeadCommitteeExhaustsTrsRetriesAndGivesUp) {
  // Satellite regression for the retry bound: with the whole committee
  // down, the origin must stop after trs_retry_max_attempts, drop its
  // pending entry, and record the give-up — not spin forever.
  HermesConfig config = healing_config();
  config.trs_retry_max_attempts = 3;
  HermesProtocol protocol(config);
  World w(30, protocol, 19);
  w.start();
  for (net::NodeId member : protocol.shared()->committee) w.crash(member);
  const net::NodeId sender = pick_sender(*protocol.shared());
  const auto tx = inject_tx(*w.ctx, sender);
  w.run_ms(8000);
  const HermesNode& origin = hermes_at(w, sender);
  EXPECT_EQ(origin.trs_given_up(), 1u);
  EXPECT_GT(origin.trs_requests_sent(), 0u);
  // No certificate was ever produced, so nothing disseminated.
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 0.0);
  // The give-up feeds the health monitor's degradation signals.
  EXPECT_EQ(origin.health().trs_give_ups(), 1u);
}

}  // namespace
}  // namespace hermes::hermes_proto
