#include "hermes/audit.hpp"

#include <gtest/gtest.h>

namespace hermes::hermes_proto {
namespace {

TEST(AuditLog, RecordsViolations) {
  AuditLog log;
  log.record(1.0, ViolationKind::kBadCertificate, 7, 100);
  log.record(2.0, ViolationKind::kWrongOverlay, 8, 101);
  ASSERT_EQ(log.violations().size(), 2u);
  EXPECT_EQ(log.violations()[0].offender, 7u);
  EXPECT_EQ(log.violations()[1].kind, ViolationKind::kWrongOverlay);
  EXPECT_EQ(log.count_of(ViolationKind::kBadCertificate), 1u);
  EXPECT_EQ(log.count_of(ViolationKind::kSequenceGap), 0u);
}

TEST(AuditLog, FirstStrikeExcludesByDefault) {
  AuditLog log;
  EXPECT_FALSE(log.is_excluded(7));
  log.record(1.0, ViolationKind::kIllegitimatePredecessor, 7, 1);
  EXPECT_TRUE(log.is_excluded(7));
  EXPECT_EQ(log.excluded_count(), 1u);
}

TEST(AuditLog, ConfigurableExclusionThreshold) {
  AuditLog log;
  log.set_exclusion_threshold(3);
  log.record(1.0, ViolationKind::kBadCertificate, 7, 1);
  log.record(2.0, ViolationKind::kBadCertificate, 7, 2);
  EXPECT_FALSE(log.is_excluded(7));
  log.record(3.0, ViolationKind::kBadCertificate, 7, 3);
  EXPECT_TRUE(log.is_excluded(7));
}

TEST(AuditLog, ViolationNamesDistinct) {
  std::set<std::string> names;
  for (auto kind :
       {ViolationKind::kBadCertificate, ViolationKind::kWrongOverlay,
        ViolationKind::kIllegitimatePredecessor,
        ViolationKind::kNotAnEntryPoint, ViolationKind::kSequenceGap}) {
    names.insert(violation_name(kind));
  }
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace hermes::hermes_proto
