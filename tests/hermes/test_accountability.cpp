// Accountability tests: fault-density checking (Section III) and signed
// violation reports with network-wide exclusion (Section VI-C).
#include <gtest/gtest.h>

#include "../protocols/harness.hpp"
#include "hermes/fault_density.hpp"
#include "hermes/hermes_node.hpp"

namespace hermes::hermes_proto {
namespace {

using protocols::Behavior;
using protocols::inject_tx;
using protocols::testing::World;

// --- Fault density -----------------------------------------------------------

net::Graph star_graph(std::size_t leaves) {
  net::Graph g(leaves + 1);
  for (net::NodeId v = 1; v <= leaves; ++v) g.add_edge(0, v, 1.0);
  return g;
}

TEST(FaultDensity, HoldsWithNoFaults) {
  const net::Graph g = star_graph(5);
  const std::vector<bool> faulty(6, false);
  const auto report = check_fault_density(g, faulty, 2, 1);
  EXPECT_TRUE(report.holds);
  EXPECT_EQ(report.max_faulty_in_ball, 0u);
  EXPECT_TRUE(report.crowded_nodes.empty());
}

TEST(FaultDensity, DetectsCrowdedBall) {
  const net::Graph g = star_graph(5);
  std::vector<bool> faulty(6, false);
  faulty[1] = faulty[2] = true;  // two faulty leaves, f = 1 violated at hub
  const auto report = check_fault_density(g, faulty, 1, 1);
  EXPECT_FALSE(report.holds);
  EXPECT_EQ(report.max_faulty_in_ball, 2u);
  EXPECT_FALSE(report.crowded_nodes.empty());
}

TEST(FaultDensity, DetectsSurroundedNode) {
  // Leaf 1's only neighbor is the hub; a faulty hub surrounds every leaf.
  const net::Graph g = star_graph(3);
  std::vector<bool> faulty(4, false);
  faulty[0] = true;
  const auto report = check_fault_density(g, faulty, 1, 1);
  EXPECT_FALSE(report.holds);
  ASSERT_EQ(report.surrounded_nodes.size(), 3u);
}

TEST(FaultDensity, RadiusMatters) {
  // Line 0-1-2-3-4 with node 4 faulty: within 1 hop of node 2 there is no
  // fault; within 2 hops there is one.
  net::Graph g(5);
  for (net::NodeId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1, 1.0);
  std::vector<bool> faulty(5, false);
  faulty[4] = true;
  EXPECT_EQ(max_tolerated_density(g, faulty, 1), 1u);  // node 3 sees it
  const auto near = check_fault_density(g, faulty, 1, 1);
  EXPECT_TRUE(near.holds);
  const auto far = check_fault_density(g, faulty, 4, 0);
  EXPECT_FALSE(far.holds);
}

TEST(FaultDensity, MaxToleratedDensityMatchesCheck) {
  net::TopologyParams tp;
  tp.node_count = 40;
  Rng trng(50);
  const net::Topology topo = net::make_topology(tp, trng);
  Rng frng(51);
  std::vector<bool> faulty(40, false);
  for (std::size_t i : frng.sample_indices(40, 8)) faulty[i] = true;
  const std::size_t worst = max_tolerated_density(topo.graph, faulty, 2);
  EXPECT_TRUE(check_fault_density(topo.graph, faulty, 2, worst).holds);
  if (worst > 0) {
    EXPECT_FALSE(check_fault_density(topo.graph, faulty, 2, worst - 1).holds);
  }
}

// --- Violation reports -------------------------------------------------------

HermesConfig report_config() {
  HermesConfig config;
  config.f = 1;
  config.k = 4;
  config.builder.annealing.initial_temperature = 5.0;
  config.builder.annealing.min_temperature = 1.0;
  config.builder.annealing.cooling_rate = 0.8;
  config.builder.annealing.moves_per_temperature = 4;
  return config;
}

TEST(ViolationReports, BlastingAttackerIsExcludedNetworkWide) {
  HermesConfig config = report_config();
  config.adversary_blind_blast = true;  // the naive attacker variant
  HermesProtocol protocol(config);
  World w(40, protocol);
  w.ctx->assign_behaviors(0.2, Behavior::kFrontRunner);
  w.ctx->attack_enabled = true;
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const auto victim = inject_tx(*w.ctx, sender);
  w.run_ms(10000);
  ASSERT_EQ(w.ctx->adversarial_of.count(victim.id), 1u);
  const net::NodeId attacker = w.ctx->adversarial_of[victim.id].sender;
  // The attacker's certificate-less blast hit several honest nodes; their
  // signed reports spread, so many nodes (not only direct receivers)
  // excluded the attacker.
  std::size_t excluding = 0;
  for (net::NodeId v = 0; v < 40; ++v) {
    if (!w.ctx->is_honest(v)) continue;
    if (static_cast<const HermesNode&>(w.ctx->node(v)).excluded(attacker)) {
      ++excluding;
    }
  }
  EXPECT_GT(excluding, 5u);
}

TEST(ViolationReports, ForgedReportIsIgnored) {
  HermesProtocol protocol(report_config());
  World w(20, protocol);
  w.start();
  auto* receiver = dynamic_cast<HermesNode*>(&w.ctx->node(3));
  auto body = std::make_shared<ViolationReportBody>();
  body->violation = Violation{1.0, ViolationKind::kBadCertificate, 9, 77};
  body->reporter = 5;
  body->signature = to_bytes("forged");
  sim::Message msg;
  msg.src = 5;
  msg.dst = 3;
  msg.type = HermesNode::kMsgViolationReport;
  msg.wire_bytes = 80;
  msg.body = body;
  receiver->on_message(msg);
  EXPECT_FALSE(receiver->excluded(9));
}

TEST(ViolationReports, SingleAccuserIsNotEnough) {
  // f = 1: one accusation must not exclude (a single faulty node could
  // frame anyone); f+1 = 2 distinct accusers are needed.
  HermesProtocol protocol(report_config());
  World w(20, protocol);
  w.start();
  const auto shared = protocol.shared();
  auto make_report = [&](net::NodeId reporter, net::NodeId offender) {
    auto body = std::make_shared<ViolationReportBody>();
    body->violation = Violation{1.0, ViolationKind::kBadCertificate, offender, 7};
    body->reporter = reporter;
    const crypto::SimSigner signer =
        crypto::SimSigner::derive(shared->report_master_key, reporter);
    // Recreate the exact signed material.
    Bytes material = to_bytes("hermes.report.v1");
    material.push_back(
        static_cast<std::uint8_t>(ViolationKind::kBadCertificate));
    put_u32_be(material, offender);
    put_u64_be(material, 7);
    put_u32_be(material, reporter);
    put_u64_be(material, 1000);
    body->signature = signer.sign(material);
    return body;
  };
  auto* receiver = dynamic_cast<HermesNode*>(&w.ctx->node(3));
  sim::Message msg;
  msg.dst = 3;
  msg.type = HermesNode::kMsgViolationReport;
  msg.wire_bytes = 80;
  msg.src = 5;
  msg.body = make_report(5, 9);
  receiver->on_message(msg);
  EXPECT_FALSE(receiver->excluded(9));
  // A duplicate from the same accuser still does not count twice.
  msg.body = make_report(5, 9);
  receiver->on_message(msg);
  EXPECT_FALSE(receiver->excluded(9));
  // A second distinct accuser tips it.
  msg.src = 6;
  msg.body = make_report(6, 9);
  receiver->on_message(msg);
  EXPECT_TRUE(receiver->excluded(9));
}

TEST(ViolationReports, DisabledMeansLocalOnly) {
  HermesConfig config = report_config();
  config.enable_violation_reports = false;
  config.adversary_blind_blast = true;
  HermesProtocol protocol(config);
  World w(30, protocol);
  w.ctx->assign_behaviors(0.2, Behavior::kFrontRunner);
  w.ctx->attack_enabled = true;
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const auto victim = inject_tx(*w.ctx, sender);
  w.run_ms(8000);
  if (w.ctx->adversarial_of.count(victim.id) == 0) GTEST_SKIP();
  const net::NodeId attacker = w.ctx->adversarial_of[victim.id].sender;
  // Only the direct blast receivers can have excluded the attacker.
  std::size_t excluding = 0;
  for (net::NodeId v = 0; v < 30; ++v) {
    if (static_cast<const HermesNode&>(w.ctx->node(v)).excluded(attacker)) {
      ++excluding;
    }
  }
  EXPECT_LE(excluding, 8u);  // at most the blast width
}

}  // namespace
}  // namespace hermes::hermes_proto
