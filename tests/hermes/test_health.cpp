// HealthMonitor unit tests (self-healing "detect" stage): gap timers,
// staleness queries, shortfall accounting, the degradation-score formula
// and the epoch-reset semantics the view-change hysteresis relies on.
#include "hermes/health.hpp"

#include <gtest/gtest.h>

namespace hermes::hermes_proto {
namespace {

TEST(HealthMonitor, NoGapWhileContiguousTracksMaxSeen) {
  HealthMonitor m;
  m.observe_progress(3, 5, 5, 100.0);
  EXPECT_FALSE(m.gap_stale(3, 100000.0));
  EXPECT_EQ(m.stale_gap_count(100000.0), 0u);
  EXPECT_TRUE(m.stale_gaps(100000.0).empty());
}

TEST(HealthMonitor, GapOpensAgesAndCloses) {
  HealthMonitor m(600.0);
  // max_seen pulls ahead at t=100: the timer starts there.
  m.observe_progress(3, 2, 5, 100.0);
  EXPECT_FALSE(m.gap_stale(3, 699.0));  // 599 ms old: not yet stale
  EXPECT_TRUE(m.gap_stale(3, 700.0));   // exactly 600 ms: stale
  const auto gaps = m.stale_gaps(700.0);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].origin, 3u);
  EXPECT_EQ(gaps[0].next_seq, 3u);  // first missing sequence
  EXPECT_EQ(gaps[0].max_seen, 5u);
  // The hole fills: the gap closes and staleness resets.
  m.observe_progress(3, 5, 5, 800.0);
  EXPECT_FALSE(m.gap_stale(3, 100000.0));
  // A new hole restarts the timer from its own open time.
  m.observe_progress(3, 5, 7, 900.0);
  EXPECT_FALSE(m.gap_stale(3, 1400.0));
  EXPECT_TRUE(m.gap_stale(3, 1500.0));
}

TEST(HealthMonitor, PersistentGapKeepsOriginalOpenTime) {
  HealthMonitor m(600.0);
  m.observe_progress(9, 0, 2, 50.0);
  // Repeated observations of the same open gap must not reset the timer.
  m.observe_progress(9, 0, 3, 300.0);
  m.observe_progress(9, 1, 3, 600.0);
  EXPECT_TRUE(m.gap_stale(9, 650.0));  // 600 ms after the t=50 open
  // next_seq follows the latest contiguous frontier, not the open-time one.
  const auto gaps = m.stale_gaps(650.0);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].next_seq, 2u);
}

TEST(HealthMonitor, StaleGapCountSpansOrigins) {
  HealthMonitor m(600.0);
  m.observe_progress(1, 0, 4, 0.0);
  m.observe_progress(2, 3, 9, 0.0);
  m.observe_progress(5, 7, 7, 0.0);  // no gap
  m.observe_progress(8, 0, 1, 500.0);
  EXPECT_EQ(m.stale_gap_count(600.0), 2u);   // origins 1 and 2
  EXPECT_EQ(m.stale_gap_count(1100.0), 3u);  // origin 8 joins
  EXPECT_EQ(m.stale_gaps(1100.0).size(), 3u);
  EXPECT_FALSE(m.gap_stale(5, 1100.0));
  EXPECT_FALSE(m.gap_stale(42, 1100.0));  // unknown origin
}

TEST(HealthMonitor, ShortfallAccountsPerOverlay) {
  HealthMonitor m;
  m.note_overlay_shortfall(0);
  m.note_overlay_shortfall(2);
  m.note_overlay_shortfall(2);
  EXPECT_EQ(m.overlay_shortfall(0), 1u);
  EXPECT_EQ(m.overlay_shortfall(1), 0u);
  EXPECT_EQ(m.overlay_shortfall(2), 2u);
  EXPECT_EQ(m.total_overlay_shortfall(), 3u);
}

TEST(HealthMonitor, DegradationScoreFormula) {
  HealthMonitor m(600.0);
  EXPECT_DOUBLE_EQ(m.degradation_score(2.0, 0.0), 0.0);
  m.note_removed();
  m.note_removed();                 // 2 removals -> +2
  m.set_failed_repairs(3);          // weight 2 -> +6
  m.note_trs_give_up();             // soft signal -> +0.5
  m.observe_progress(4, 0, 2, 0.0); // stale by t=600 -> +0.5
  EXPECT_DOUBLE_EQ(m.degradation_score(2.0, 600.0), 2.0 + 6.0 + 0.5 + 0.5);
  // The failed-repair weight is the caller's knob, not monitor state.
  EXPECT_DOUBLE_EQ(m.degradation_score(0.5, 600.0), 2.0 + 1.5 + 0.5 + 0.5);
  // Before the gap is stale it contributes nothing.
  EXPECT_DOUBLE_EQ(m.degradation_score(2.0, 599.0), 2.0 + 6.0 + 0.5);
}

TEST(HealthMonitor, EpochAdvanceResetsEpisodeButKeepsCumulativeCounters) {
  HealthMonitor m(600.0);
  m.note_removed();
  m.set_failed_repairs(2);
  m.note_gap_pull();
  m.note_trs_give_up();
  m.note_overlay_shortfall(1);
  m.observe_progress(7, 0, 3, 0.0);
  ASSERT_GT(m.degradation_score(2.0, 1000.0), 0.0);

  m.on_epoch_advanced();
  // Episode state (what motivated the view change) is wiped...
  EXPECT_DOUBLE_EQ(m.degradation_score(2.0, 1000.0), 0.0);
  EXPECT_EQ(m.removed_since_epoch(), 0u);
  EXPECT_EQ(m.failed_repairs(), 0u);
  EXPECT_EQ(m.stale_gap_count(100000.0), 0u);
  // ...while lifetime statistics survive for reporting.
  EXPECT_EQ(m.gap_pulls(), 1u);
  EXPECT_EQ(m.trs_give_ups(), 1u);
  EXPECT_EQ(m.total_overlay_shortfall(), 1u);
}

}  // namespace
}  // namespace hermes::hermes_proto
