// Adversarial-committee tests: equivocating or corrupt partial signatures
// must never produce a wrong seed, and f Byzantine members must never stall
// the TRS (Section VI-A's f-tolerance claim).
#include <gtest/gtest.h>

#include "../protocols/harness.hpp"
#include "hermes/hermes_node.hpp"

namespace hermes::hermes_proto {
namespace {

using protocols::Behavior;
using protocols::honest_coverage;
using protocols::inject_tx;
using protocols::testing::World;

HermesConfig fast_config(std::size_t f = 1, std::size_t k = 4) {
  HermesConfig config;
  config.f = f;
  config.k = k;
  config.builder.annealing.initial_temperature = 5.0;
  config.builder.annealing.min_temperature = 1.0;
  config.builder.annealing.cooling_rate = 0.8;
  config.builder.annealing.moves_per_temperature = 4;
  return config;
}

TEST(CommitteeAdversary, CorruptPartialCannotSkewTheSeed) {
  // A malicious committee member hands the sender a corrupted partial; the
  // collector rejects it and the seed comes from the honest 2f+1, so the
  // combined signature is the unique one.
  const crypto::SimThresholdScheme scheme(to_bytes("grp"), 4, 3);
  TrsCollector collector(scheme);
  TrsId id;
  id.origin = 3;
  id.seq = 1;
  id.tx_hash = crypto::sha256("tx");
  const Bytes msg = id.signed_message();

  crypto::PartialSignature corrupt = scheme.partial_sign(1, msg);
  corrupt.bytes[5] ^= 0xff;
  EXPECT_FALSE(collector.add_partial(id, corrupt).has_value());

  // Equivocation: the same member later sends a partial for a DIFFERENT
  // message under this id — also rejected (verified against id's message).
  crypto::PartialSignature equivocating = scheme.partial_sign(1, to_bytes("other"));
  EXPECT_FALSE(collector.add_partial(id, equivocating).has_value());

  EXPECT_FALSE(collector.add_partial(id, scheme.partial_sign(2, msg)));
  EXPECT_FALSE(collector.add_partial(id, scheme.partial_sign(3, msg)));
  const auto combined = collector.add_partial(id, scheme.partial_sign(4, msg));
  ASSERT_TRUE(combined.has_value());
  // Unique signature: identical to what a fully honest committee produces.
  std::vector<crypto::PartialSignature> honest;
  for (std::size_t i = 1; i <= 3; ++i) honest.push_back(scheme.partial_sign(i, msg));
  const auto reference = scheme.combine(msg, honest);
  ASSERT_TRUE(reference.has_value());
  EXPECT_EQ(*combined, *reference);
}

TEST(CommitteeAdversary, RealRsaEquivocationAlsoRejected) {
  Rng rng(8181);
  const crypto::RsaThresholdScheme scheme(
      crypto::threshold_rsa_generate(rng, 256, 4, 3));
  TrsCollector collector(scheme);
  TrsId id;
  id.origin = 9;
  id.seq = 1;
  id.tx_hash = crypto::sha256("tx9");
  const Bytes msg = id.signed_message();
  // Partial over a different message: the Fiat-Shamir proof fails against
  // this id's message.
  EXPECT_FALSE(
      collector.add_partial(id, scheme.partial_sign(1, to_bytes("wrong"))));
  EXPECT_FALSE(collector.add_partial(id, scheme.partial_sign(2, msg)));
  EXPECT_FALSE(collector.add_partial(id, scheme.partial_sign(3, msg)));
  EXPECT_TRUE(collector.add_partial(id, scheme.partial_sign(4, msg)).has_value());
}

TEST(CommitteeAdversary, FByzantineMembersCannotStallTrs) {
  // Force exactly f committee members Byzantine (droppers): the TRS must
  // still complete for every sender; seeds stay uniform-ish over overlays.
  HermesProtocol protocol(fast_config(2, 5));  // committee of 7, f = 2
  World w(60, protocol, 909);
  w.start();
  // Mark the first f committee members as droppers post-hoc.
  const auto committee = protocol.shared()->committee;
  w.ctx->behaviors[committee[0]] = Behavior::kDropper;
  w.ctx->behaviors[committee[1]] = Behavior::kDropper;
  std::vector<protocols::Transaction> txs;
  for (int i = 0; i < 5; ++i) {
    const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
    txs.push_back(inject_tx(*w.ctx, sender));
    w.run_ms(600);
  }
  w.run_ms(8000);
  for (const auto& tx : txs) {
    EXPECT_GT(honest_coverage(*w.ctx, tx), 0.95) << tx.id;
  }
}

TEST(CommitteeAdversary, FPlusOneByzantineMembersDoStallTrs) {
  // The bound is tight: f+1 unresponsive committee members leave only 2f
  // honest partials — below the 2f+1 threshold, no seed, no dissemination.
  // (The overlay fallback cannot help: without a certificate nothing is
  // accepted. This is the safety-over-liveness choice the paper makes.)
  HermesConfig config = fast_config(1, 3);
  config.enable_fallback = true;
  HermesProtocol protocol(config);
  World w(40, protocol, 910);
  w.start();
  const auto committee = protocol.shared()->committee;
  w.ctx->behaviors[committee[0]] = Behavior::kDropper;
  w.ctx->behaviors[committee[1]] = Behavior::kDropper;  // f+1 = 2 droppers
  // Pick an honest sender that is not a committee member.
  net::NodeId sender = 0;
  while (!w.ctx->is_honest(sender) ||
         protocol.shared()->is_committee_member(sender)) {
    ++sender;
  }
  const auto tx = inject_tx(*w.ctx, sender);
  w.run_ms(10000);
  EXPECT_LT(honest_coverage(*w.ctx, tx), 0.05);
}

}  // namespace
}  // namespace hermes::hermes_proto
