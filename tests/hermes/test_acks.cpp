// Acknowledgment-of-delivery tests (Section IV step 3, optional).
#include <gtest/gtest.h>

#include "../protocols/harness.hpp"
#include "hermes/hermes_node.hpp"

namespace hermes::hermes_proto {
namespace {

using protocols::Behavior;
using protocols::inject_tx;
using protocols::testing::World;

HermesConfig ack_config() {
  HermesConfig config;
  config.f = 1;
  config.k = 4;
  config.enable_acks = true;
  config.builder.annealing.initial_temperature = 5.0;
  config.builder.annealing.min_temperature = 1.0;
  config.builder.annealing.cooling_rate = 0.8;
  config.builder.annealing.moves_per_temperature = 4;
  return config;
}

TEST(HermesAcks, SenderCollectsAcksFromTheWholeNetwork) {
  HermesProtocol protocol(ack_config());
  World w(40, protocol);
  w.start();
  const auto tx = w.send_from(6);
  w.run_ms(8000);
  const auto* sender = dynamic_cast<const HermesNode*>(&w.ctx->node(6));
  // Every other node delivered and acknowledged; aggregation funnels the
  // counts to the origin. The sender contributes one self-ack if it is an
  // entry point of the selected overlay, so the ceiling is n.
  EXPECT_GE(sender->acks_received(tx.id), 39u * 9 / 10);
  EXPECT_LE(sender->acks_received(tx.id), 40u);
}

TEST(HermesAcks, DisabledByDefault) {
  HermesConfig config = ack_config();
  config.enable_acks = false;
  HermesProtocol protocol(config);
  World w(30, protocol);
  w.start();
  const auto tx = w.send_from(3);
  w.run_ms(5000);
  const auto* sender = dynamic_cast<const HermesNode*>(&w.ctx->node(3));
  EXPECT_EQ(sender->acks_received(tx.id), 0u);
}

TEST(HermesAcks, AckTrafficIsSmall) {
  // Acks are 24-byte aggregates, not per-node payload echoes: total bytes
  // with acks on should exceed the baseline only marginally.
  HermesConfig with = ack_config();
  HermesConfig without = ack_config();
  without.enable_acks = false;
  HermesProtocol p1(with), p2(without);
  World w1(40, p1, 5), w2(40, p2, 5);
  w1.start();
  w2.start();
  w1.send_from(6);
  w2.send_from(6);
  w1.run_ms(8000);
  w2.run_ms(8000);
  const auto b1 = w1.ctx->network.total().bytes_sent;
  const auto b2 = w2.ctx->network.total().bytes_sent;
  EXPECT_GT(b1, b2);
  EXPECT_LT(static_cast<double>(b1), static_cast<double>(b2) * 1.6);
}

TEST(HermesAcks, PartialCoverageUnderDroppers) {
  HermesProtocol protocol(ack_config());
  World w(40, protocol, 9);
  w.ctx->assign_behaviors(0.25, Behavior::kDropper);
  w.start();
  const net::NodeId sender_id = w.ctx->random_honest(w.ctx->rng);
  const auto tx = inject_tx(*w.ctx, sender_id);
  w.run_ms(8000);
  const auto* sender =
      dynamic_cast<const HermesNode*>(&w.ctx->node(sender_id));
  // Some acks arrive (delivery worked), but droppers swallow some subtree
  // reports, so the count undershoots the true coverage.
  EXPECT_GT(sender->acks_received(tx.id), 0u);
  EXPECT_LE(sender->acks_received(tx.id), 39u);
}

}  // namespace
}  // namespace hermes::hermes_proto
