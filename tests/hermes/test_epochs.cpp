// Runtime view-change tests (Section VII): overlay generations rotate
// while traffic keeps flowing; stale-generation messages are dropped
// without being audited as malice.
#include <gtest/gtest.h>

#include "../protocols/harness.hpp"
#include "hermes/hermes_node.hpp"

namespace hermes::hermes_proto {
namespace {

using protocols::honest_coverage;
using protocols::inject_tx;
using protocols::testing::World;

HermesConfig epoch_config() {
  HermesConfig config;
  config.f = 1;
  config.k = 4;
  config.builder.annealing.initial_temperature = 5.0;
  config.builder.annealing.min_temperature = 1.0;
  config.builder.annealing.cooling_rate = 0.8;
  config.builder.annealing.moves_per_temperature = 4;
  return config;
}

TEST(HermesEpochs, AdvanceRotatesOverlaysAndEpochCounter) {
  HermesProtocol protocol(epoch_config());
  World w(40, protocol);
  w.start();
  const auto before = protocol.shared();
  EXPECT_EQ(before->epoch, 0u);
  protocol.advance_epoch(*w.ctx, 777);
  const auto after = protocol.shared();
  EXPECT_EQ(after->epoch, 1u);
  EXPECT_EQ(after->committee, before->committee);
  // The new generation is a genuinely different structure.
  bool any_difference = false;
  for (std::size_t l = 0; l < after->overlays.size(); ++l) {
    if (after->overlays[l].entry_points() != before->overlays[l].entry_points() ||
        after->overlays[l].edge_count() != before->overlays[l].edge_count()) {
      any_difference = true;
    }
    EXPECT_TRUE(after->overlays[l].is_valid());
  }
  EXPECT_TRUE(any_difference);
  for (net::NodeId v = 0; v < 40; ++v) {
    EXPECT_EQ(static_cast<const HermesNode&>(w.ctx->node(v)).current_epoch(), 1u);
  }
}

TEST(HermesEpochs, DeliveryWorksAfterViewChange) {
  HermesProtocol protocol(epoch_config());
  World w(40, protocol);
  w.start();
  const auto tx1 = w.send_from(3);
  w.run_ms(5000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx1), 1.0);

  protocol.advance_epoch(*w.ctx, 101);
  const auto tx2 = w.send_from(3);
  w.run_ms(5000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx2), 1.0);
}

TEST(HermesEpochs, InFlightTrafficSurvivesTheBoundary) {
  HermesProtocol protocol(epoch_config());
  World w(40, protocol);
  w.start();
  // Inject, advance the epoch mid-flight (before dissemination finishes),
  // keep running: the previous generation stays accepted, so the tx lands
  // everywhere and no honest node gets audited.
  const auto tx = w.send_from(5);
  w.run_ms(400.0);  // TRS likely done, dissemination in flight
  protocol.advance_epoch(*w.ctx, 202);
  w.run_ms(8000);
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.95);
  std::size_t violations = 0;
  for (net::NodeId v = 0; v < 40; ++v) {
    violations += static_cast<const HermesNode&>(w.ctx->node(v))
                      .audit()
                      .violations()
                      .size();
  }
  EXPECT_EQ(violations, 0u);
}

TEST(HermesEpochs, TwoGenerationsOldIsStale) {
  HermesProtocol protocol(epoch_config());
  World w(30, protocol);
  w.start();
  const auto epoch0 = protocol.shared();
  protocol.advance_epoch(*w.ctx, 1);
  protocol.advance_epoch(*w.ctx, 2);
  // Hand-craft a message stamped with epoch 0: silently dropped (neither
  // delivered nor audited).
  auto body = std::make_shared<DataBody>();
  body->tx.sender = 5;
  body->tx.sender_seq = 9;
  body->tx.id = mempool::Transaction::make_id(5, 9);
  body->trs = TrsId{5, 9, body->tx.hash()};
  body->certificate = to_bytes("irrelevant");
  body->overlay_index = 0;
  body->epoch = epoch0->epoch;
  sim::Message msg;
  msg.src = 5;
  msg.dst = 7;
  msg.type = HermesNode::kMsgData;
  msg.wire_bytes = 300;
  msg.body = body;
  auto* receiver = dynamic_cast<HermesNode*>(&w.ctx->node(7));
  receiver->on_message(msg);
  EXPECT_FALSE(receiver->pool().contains(body->tx.id));
  EXPECT_TRUE(receiver->audit().violations().empty());
}

TEST(HermesEpochs, RepeatedViewChangesStayHealthy) {
  HermesProtocol protocol(epoch_config());
  World w(30, protocol);
  w.start();
  for (int e = 0; e < 4; ++e) {
    const auto tx = w.send_from(static_cast<net::NodeId>(2 + e));
    w.run_ms(5000);
    EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0) << "epoch " << e;
    protocol.advance_epoch(*w.ctx, 900 + e);
  }
}

}  // namespace
}  // namespace hermes::hermes_proto
