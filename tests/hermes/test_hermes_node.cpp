#include "hermes/hermes_node.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "protocols/gossip.hpp"

#include "../protocols/harness.hpp"

namespace hermes::hermes_proto {
namespace {

using protocols::AttackOutcome;
using protocols::Behavior;
using protocols::front_run_outcome;
using protocols::honest_coverage;
using protocols::inject_tx;
using protocols::testing::World;

HermesConfig fast_config(std::size_t f = 1, std::size_t k = 4) {
  HermesConfig config;
  config.f = f;
  config.k = k;
  config.builder.annealing.initial_temperature = 5.0;
  config.builder.annealing.min_temperature = 1.0;
  config.builder.annealing.cooling_rate = 0.8;
  config.builder.annealing.moves_per_temperature = 4;
  return config;
}

TEST(HermesNode, DeliversToAllHonestNodes) {
  HermesProtocol protocol(fast_config());
  World w(40, protocol);
  w.start();
  const auto tx = w.send_from(7);
  w.run_ms(5000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
}

TEST(HermesNode, MultipleTransactionsUseDifferentOverlays) {
  HermesProtocol protocol(fast_config(1, 4));
  World w(40, protocol);
  w.start();
  // Inject several txs; each gets a seed-selected overlay. With 12 txs and
  // 4 overlays the chance all land on one overlay is negligible, which we
  // observe indirectly: delivery latencies differ across txs from the same
  // sender (different trees, different paths).
  std::vector<protocols::Transaction> txs;
  for (int i = 0; i < 12; ++i) {
    txs.push_back(w.send_from(7));
    w.run_ms(500);
  }
  w.run_ms(5000);
  std::set<long> latency_signatures;
  for (const auto& tx : txs) {
    EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
    const auto lats = w.ctx->tracker.latencies(tx.id);
    latency_signatures.insert(
        std::lround(hermes::mean_of(lats) * 1000.0));
  }
  EXPECT_GT(latency_signatures.size(), 1u);
}

TEST(HermesNode, CommitteeMemberCanSend) {
  HermesProtocol protocol(fast_config());
  World w(30, protocol);
  w.start();
  const net::NodeId member = protocol.shared()->committee.front();
  const auto tx = inject_tx(*w.ctx, member);
  w.run_ms(5000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
}

TEST(HermesNode, ToleratesDroppersViaRedundancyAndFallback) {
  HermesProtocol protocol(fast_config(1, 4));
  World w(60, protocol, 17);
  w.ctx->assign_behaviors(0.25, Behavior::kDropper);
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const auto tx = inject_tx(*w.ctx, sender);
  w.run_ms(8000);
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.97);
}

TEST(HermesNode, FallbackDisabledLowersRobustness) {
  HermesConfig with = fast_config(1, 4);
  HermesConfig without = fast_config(1, 4);
  without.enable_fallback = false;
  HermesProtocol p_with(with), p_without(without);
  World w1(60, p_with, 19), w2(60, p_without, 19);
  w1.ctx->assign_behaviors(0.33, Behavior::kDropper);
  w2.ctx->assign_behaviors(0.33, Behavior::kDropper);
  w1.start();
  w2.start();
  double cov_with = 0.0, cov_without = 0.0;
  for (int i = 0; i < 4; ++i) {
    const auto t1 = inject_tx(*w1.ctx, w1.ctx->random_honest(w1.ctx->rng));
    const auto t2 = inject_tx(*w2.ctx, w2.ctx->random_honest(w2.ctx->rng));
    w1.run_ms(4000);
    w2.run_ms(4000);
    cov_with += honest_coverage(*w1.ctx, t1);
    cov_without += honest_coverage(*w2.ctx, t2);
  }
  EXPECT_GE(cov_with, cov_without);
}

TEST(HermesNode, DirectBlastWithoutCertificateIsFlagged) {
  HermesConfig config = fast_config();
  config.adversary_blind_blast = true;  // the naive attacker variant
  HermesProtocol protocol(config);
  World w(40, protocol);
  w.ctx->assign_behaviors(0.2, Behavior::kFrontRunner);
  w.ctx->attack_enabled = true;
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const auto victim = inject_tx(*w.ctx, sender);
  w.run_ms(6000);
  ASSERT_EQ(w.ctx->adversarial_of.count(victim.id), 1u);
  // At least one honest node recorded a violation from the blast.
  std::size_t total_violations = 0;
  for (net::NodeId v = 0; v < 40; ++v) {
    if (!w.ctx->is_honest(v)) continue;
    total_violations += static_cast<const HermesNode&>(w.ctx->node(v))
                            .audit()
                            .violations()
                            .size();
  }
  EXPECT_GT(total_violations, 0u);
}

TEST(HermesNode, AdversarialTxStillDeliveredThroughProtocol) {
  // The adversary's tx is valid (it got a TRS) — it must flow, just not
  // faster than the protocol allows.
  HermesProtocol protocol(fast_config());
  World w(40, protocol);
  w.ctx->assign_behaviors(0.2, Behavior::kFrontRunner);
  w.ctx->attack_enabled = true;
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const auto victim = inject_tx(*w.ctx, sender);
  w.run_ms(8000);
  ASSERT_EQ(w.ctx->adversarial_of.count(victim.id), 1u);
  const std::uint64_t attack_id = w.ctx->adversarial_of[victim.id].id;
  std::size_t reached = 0;
  for (net::NodeId v = 0; v < 40; ++v) {
    if (w.ctx->tracker.delivered(attack_id, v)) ++reached;
  }
  EXPECT_GT(reached, 30u);
}

TEST(HermesNode, SequenceGapBlocksTrs) {
  // A sender that skips a sequence number never completes the TRS for the
  // out-of-order message: the committee parks the request (Section VI-C).
  // Give the origin a retry budget that outlasts the 5 s gap below, so the
  // round is still pending when the gap finally closes (with the default
  // budget the origin gives up at 4.8 s and drops the pending entry).
  HermesConfig config = fast_config();
  config.trs_retry_max_attempts = 64;
  HermesProtocol protocol(config);
  World w(30, protocol);
  w.start();
  auto& sender = w.ctx->node(5);
  // Skip seq 1: submit seq 2 directly.
  protocols::Transaction tx;
  tx.sender = 5;
  sender.allocate_seq();  // burn seq 1 without sending it
  tx.sender_seq = sender.allocate_seq();
  ASSERT_EQ(tx.sender_seq, 2u);
  tx.id = mempool::Transaction::make_id(5, tx.sender_seq);
  tx.created_at = w.ctx->engine.now();
  w.ctx->tracker.on_created(tx.id, tx.created_at);
  sender.submit(tx);
  w.run_ms(5000);
  // Nobody (except the sender itself) received it.
  EXPECT_LT(honest_coverage(*w.ctx, tx), 0.05);

  // Now send the missing seq 1: committee replays the parked request and
  // both transactions flow.
  protocols::Transaction first;
  first.sender = 5;
  first.sender_seq = 1;
  first.id = mempool::Transaction::make_id(5, 1);
  first.created_at = w.ctx->engine.now();
  w.ctx->tracker.on_created(first.id, first.created_at);
  sender.submit(first);
  w.run_ms(6000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, first), 1.0);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
}

TEST(HermesNode, FrontRunningRarerThanInGossip) {
  // The headline claim (Figure 5a), at test scale: run several victims
  // through HERMES and gossip with the same adversary fraction; HERMES
  // should win (strictly fewer successful front-runs).
  std::size_t hermes_wins = 0, gossip_wins = 0;
  const int kRuns = 6;
  for (int run = 0; run < kRuns; ++run) {
    const std::uint64_t seed = 100 + run;
    {
      HermesProtocol protocol(fast_config());
      World w(40, protocol, seed);
      w.ctx->assign_behaviors(0.3, Behavior::kFrontRunner);
      w.ctx->attack_enabled = true;
      w.start();
      const auto victim = inject_tx(*w.ctx, w.ctx->random_honest(w.ctx->rng));
      w.run_ms(8000);
      Rng judge(seed);
      if (front_run_outcome(*w.ctx, victim, judge) == AttackOutcome::kSucceeded) {
        ++hermes_wins;
      }
    }
    {
      protocols::GossipProtocol protocol;
      World w(40, protocol, seed);
      w.ctx->assign_behaviors(0.3, Behavior::kFrontRunner);
      w.ctx->attack_enabled = true;
      w.start();
      const auto victim = inject_tx(*w.ctx, w.ctx->random_honest(w.ctx->rng));
      w.run_ms(8000);
      Rng judge(seed);
      if (front_run_outcome(*w.ctx, victim, judge) == AttackOutcome::kSucceeded) {
        ++gossip_wins;
      }
    }
  }
  EXPECT_LE(hermes_wins, gossip_wins);
}

TEST(HermesNode, EndToEndWithRealThresholdRsa) {
  // The full protocol over genuine Shoup threshold RSA: committee members
  // produce real partial signatures with Fiat-Shamir proofs, the sender
  // combines them into an RSA-FDH certificate, and every receiver verifies
  // it. Slow (safe-prime keygen), so one compact scenario.
  HermesConfig config = fast_config(1, 3);
  config.use_real_threshold_crypto = true;
  config.real_threshold_rsa_bits = 256;
  HermesProtocol protocol(config);
  World w(25, protocol, 4242);
  w.start();
  const auto tx = w.send_from(4);
  w.run_ms(6000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
  // The certificate on the wire is a real RSA signature over the TRS tuple.
  const auto shared = protocol.shared();
  const auto* scheme =
      dynamic_cast<const crypto::RsaThresholdScheme*>(shared->scheme.get());
  ASSERT_NE(scheme, nullptr);
  EXPECT_GE(scheme->public_params().rsa.n.bit_length(), 255u);
}

TEST(PickCommittee, CapsByzantineMembers) {
  HermesProtocol protocol(fast_config());
  World w(40, protocol);
  w.ctx->assign_behaviors(0.33, Behavior::kDropper);
  Rng rng(5);
  const auto committee = pick_committee(*w.ctx, 2, rng);
  EXPECT_EQ(committee.size(), 7u);
  std::size_t byz = 0;
  for (net::NodeId m : committee) {
    if (!w.ctx->is_honest(m)) ++byz;
  }
  EXPECT_LE(byz, 2u);
}

TEST(HermesShared, CommitteeIndexLookup) {
  HermesShared shared;
  shared.committee = {10, 20, 30, 40};
  EXPECT_TRUE(shared.is_committee_member(20));
  EXPECT_FALSE(shared.is_committee_member(25));
  EXPECT_EQ(shared.committee_index(10), 1u);
  EXPECT_EQ(shared.committee_index(40), 4u);
  EXPECT_EQ(shared.committee_index(99), 0u);
}

}  // namespace
}  // namespace hermes::hermes_proto
