#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "sim/delivery.hpp"

namespace hermes::sim {
namespace {

net::Topology small_topology(std::size_t n = 8) {
  net::TopologyParams params;
  params.node_count = n;
  params.min_degree = 3;
  params.connectivity = 2;
  Rng rng(1234);
  return net::make_topology(params, rng);
}

struct PingBody final : Body<PingBody> {
  int value = 0;
};

class EchoNode final : public Node {
 public:
  using Node::Node;
  void on_message(const Message& msg) override {
    received.push_back(msg);
    received_at.push_back(now());
  }
  std::vector<Message> received;
  std::vector<SimTime> received_at;
};

struct NetworkFixture {
  NetworkFixture() : topo(small_topology()), net_(engine, topo, NetworkParams{}, Rng(5)) {
    for (net::NodeId v = 0; v < topo.graph.node_count(); ++v) {
      nodes.push_back(std::make_unique<EchoNode>(net_, v));
    }
  }
  Engine engine;
  net::Topology topo;
  Network net_;
  std::vector<std::unique_ptr<EchoNode>> nodes;
};

Message make_msg(net::NodeId src, net::NodeId dst, int value = 7) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = 1;
  m.wire_bytes = 100;
  auto body = std::make_shared<PingBody>();
  body->value = value;
  m.body = body;
  return m;
}

TEST(Network, DeliversWithPairLatency) {
  NetworkFixture fx;
  const double lat = fx.net_.pair_latency(0, 1);
  const std::optional<SimTime> at = fx.net_.send(make_msg(0, 1));
  ASSERT_TRUE(at.has_value());
  EXPECT_GT(*at, 0.0);
  fx.engine.run();
  ASSERT_EQ(fx.nodes[1]->received.size(), 1u);
  // Link latency + processing delay + a few microseconds of serialization.
  EXPECT_NEAR(fx.nodes[1]->received_at[0], lat + 0.05, 0.05);
  EXPECT_EQ(fx.nodes[1]->received[0].as<PingBody>().value, 7);
}

TEST(Network, PairLatencyStableAcrossCalls) {
  NetworkFixture fx;
  // Non-adjacent pairs get a cached sample; repeated queries must agree.
  const double a = fx.net_.pair_latency(0, 7);
  EXPECT_DOUBLE_EQ(a, fx.net_.pair_latency(0, 7));
  EXPECT_DOUBLE_EQ(a, fx.net_.pair_latency(7, 0));
}

TEST(Network, BandwidthAccounting) {
  NetworkFixture fx;
  fx.net_.send(make_msg(0, 1));
  fx.net_.send(make_msg(0, 2));
  fx.engine.run();
  EXPECT_EQ(fx.net_.counters(0).messages_sent, 2u);
  EXPECT_EQ(fx.net_.counters(0).bytes_sent, 200u);
  EXPECT_EQ(fx.net_.counters(1).messages_received, 1u);
  EXPECT_EQ(fx.net_.total().messages_sent, 2u);
  EXPECT_EQ(fx.net_.total().bytes_received, 200u);
}

TEST(Network, ResetCountersZeroes) {
  NetworkFixture fx;
  fx.net_.send(make_msg(0, 1));
  fx.engine.run();
  fx.net_.reset_counters();
  EXPECT_EQ(fx.net_.total().messages_sent, 0u);
  EXPECT_EQ(fx.net_.counters(0).bytes_sent, 0u);
}

TEST(Network, CrashedReceiverGetsNothing) {
  NetworkFixture fx;
  fx.net_.set_crashed(1, true);
  EXPECT_FALSE(fx.net_.send(make_msg(0, 1)).has_value());
  fx.engine.run();
  EXPECT_TRUE(fx.nodes[1]->received.empty());
  EXPECT_EQ(fx.net_.dropped_messages(), 1u);
}

TEST(Network, CrashedSenderSendsNothing) {
  NetworkFixture fx;
  fx.net_.set_crashed(0, true);
  fx.net_.send(make_msg(0, 1));
  fx.engine.run();
  EXPECT_TRUE(fx.nodes[1]->received.empty());
}

TEST(Network, CrashMidFlightSuppressesDelivery) {
  NetworkFixture fx;
  fx.net_.send(make_msg(0, 1));
  fx.net_.set_crashed(1, true);  // crash after send, before delivery
  fx.engine.run();
  EXPECT_TRUE(fx.nodes[1]->received.empty());
}

TEST(Network, RecoveredNodeReceivesAgain) {
  NetworkFixture fx;
  fx.net_.set_crashed(1, true);
  EXPECT_FALSE(fx.net_.send(make_msg(0, 1)).has_value());
  fx.engine.run();
  ASSERT_TRUE(fx.nodes[1]->received.empty());
  // Recovery is forward-only: the message dropped while down stays lost,
  // but traffic sent after set_crashed(id, false) flows normally.
  fx.net_.set_crashed(1, false);
  EXPECT_TRUE(fx.net_.send(make_msg(0, 1)).has_value());
  fx.net_.send(make_msg(1, 2));  // recovered node can send too
  fx.engine.run();
  EXPECT_EQ(fx.nodes[1]->received.size(), 1u);
  EXPECT_EQ(fx.nodes[2]->received.size(), 1u);
  EXPECT_EQ(fx.net_.dropped_messages(), 1u);
}

TEST(Network, LinkFlapDropsOnlyDuringWindow) {
  NetworkFixture fx;
  fx.net_.add_link_flap(0, 1, 10.0, 20.0);
  EXPECT_FALSE(fx.net_.link_down(0, 1, 5.0));
  EXPECT_TRUE(fx.net_.link_down(0, 1, 10.0));
  EXPECT_TRUE(fx.net_.link_down(1, 0, 15.0));  // undirected
  EXPECT_FALSE(fx.net_.link_down(0, 1, 20.0));  // half-open window
  EXPECT_FALSE(fx.net_.link_down(0, 2, 15.0));  // other links unaffected

  // A send attempted inside the window is silently charged as a drop.
  fx.net_.add_link_flap(0, 1, 0.0, 1.0);
  EXPECT_FALSE(fx.net_.send(make_msg(0, 1)).has_value());
  EXPECT_EQ(fx.net_.dropped_messages(), 1u);
  // Other destinations still flow while (0, 1) is down.
  EXPECT_TRUE(fx.net_.send(make_msg(0, 2)).has_value());
  fx.engine.run();
  EXPECT_TRUE(fx.nodes[1]->received.empty());
  EXPECT_EQ(fx.nodes[2]->received.size(), 1u);
}

TEST(Network, LinkFlapWindowsCompose) {
  NetworkFixture fx;
  fx.net_.add_link_flap(2, 3, 10.0, 20.0);
  fx.net_.add_link_flap(2, 3, 40.0, 50.0);
  EXPECT_TRUE(fx.net_.link_down(2, 3, 15.0));
  EXPECT_FALSE(fx.net_.link_down(2, 3, 30.0));
  EXPECT_TRUE(fx.net_.link_down(3, 2, 45.0));
}

TEST(Network, ProcessingMultiplierDelaysReceiver) {
  NetworkFixture plain;
  NetworkFixture slow;
  slow.net_.set_processing_multiplier(1, 10.0);
  EXPECT_DOUBLE_EQ(slow.net_.processing_multiplier(1), 10.0);
  EXPECT_DOUBLE_EQ(slow.net_.processing_multiplier(2), 1.0);
  plain.net_.send(make_msg(0, 1));
  slow.net_.send(make_msg(0, 1));
  plain.engine.run();
  slow.engine.run();
  ASSERT_EQ(plain.nodes[1]->received.size(), 1u);
  ASSERT_EQ(slow.nodes[1]->received.size(), 1u);
  // The straggler's delivery lags by exactly the extra processing time.
  const double extra = 9.0 * NetworkParams{}.processing_delay_ms;
  EXPECT_NEAR(slow.nodes[1]->received_at[0],
              plain.nodes[1]->received_at[0] + extra, 1e-9);
  // Receivers other than the straggler keep the baseline latency. The two
  // engines' clocks have drifted apart by `extra`, so compare transit
  // times, not absolute timestamps.
  const double plain_now = plain.engine.now();
  const double slow_now = slow.engine.now();
  plain.net_.send(make_msg(0, 2));
  slow.net_.send(make_msg(0, 2));
  plain.engine.run();
  slow.engine.run();
  ASSERT_EQ(slow.nodes[2]->received.size(), 1u);
  EXPECT_DOUBLE_EQ(slow.nodes[2]->received_at[0] - slow_now,
                   plain.nodes[2]->received_at[0] - plain_now);
}

TEST(Network, DropProbabilityOneDropsAll) {
  Engine engine;
  const net::Topology topo = small_topology();
  NetworkParams params;
  params.drop_probability = 1.0;
  Network network(engine, topo, params, Rng(6));
  EchoNode a(network, 0), b(network, 1);
  std::vector<std::unique_ptr<EchoNode>> rest;
  for (net::NodeId v = 2; v < topo.graph.node_count(); ++v) {
    rest.push_back(std::make_unique<EchoNode>(network, v));
  }
  network.send(make_msg(0, 1));
  engine.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(network.dropped_messages(), 1u);
  // Send is still charged to the sender (the bytes left the NIC).
  EXPECT_EQ(network.counters(0).messages_sent, 1u);
}

TEST(Network, DropProbabilityStatistical) {
  Engine engine;
  const net::Topology topo = small_topology();
  NetworkParams params;
  params.drop_probability = 0.3;
  Network network(engine, topo, params, Rng(7));
  std::vector<std::unique_ptr<EchoNode>> nodes;
  for (net::NodeId v = 0; v < topo.graph.node_count(); ++v) {
    nodes.push_back(std::make_unique<EchoNode>(network, v));
  }
  const int total = 2000;
  for (int i = 0; i < total; ++i) network.send(make_msg(0, 1));
  engine.run();
  const double delivered =
      static_cast<double>(nodes[1]->received.size()) / total;
  EXPECT_NEAR(delivered, 0.7, 0.04);
}

TEST(DeliveryTracker, CoverageAndLatencies) {
  DeliveryTracker tracker(4);
  tracker.on_created(1, 10.0);
  tracker.on_delivered(1, 1, 15.0);
  tracker.on_delivered(1, 2, 20.0);
  tracker.on_delivered(1, 1, 17.0);  // duplicate ignored
  EXPECT_TRUE(tracker.delivered(1, 1));
  EXPECT_FALSE(tracker.delivered(1, 3));
  EXPECT_DOUBLE_EQ(tracker.delivery_time(1, 1), 15.0);
  const auto lats = tracker.latencies(1);
  EXPECT_EQ(lats.size(), 2u);
  EXPECT_DOUBLE_EQ(tracker.coverage(1, 4), 0.5);
  EXPECT_DOUBLE_EQ(tracker.mean_coverage(4), 0.5);
}

TEST(DeliveryTracker, UnknownItemIgnored) {
  DeliveryTracker tracker(4);
  tracker.on_delivered(99, 1, 5.0);
  EXPECT_FALSE(tracker.delivered(99, 1));
  EXPECT_DOUBLE_EQ(tracker.delivery_time(99, 1), -1.0);
}

}  // namespace
}  // namespace hermes::sim
