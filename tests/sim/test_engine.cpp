#include "sim/engine.hpp"

#include <gtest/gtest.h>

namespace hermes::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(5.0, [&] { order.push_back(2); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(9.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 9.0);
}

TEST(Engine, FifoAmongSameTimestamp) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedScheduling) {
  Engine e;
  std::vector<double> times;
  e.schedule(1.0, [&] {
    times.push_back(e.now());
    e.schedule(2.0, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] { ++fired; });
  e.schedule(5.0, [&] { ++fired; });
  e.schedule(10.0, [&] { ++fired; });
  const std::size_t executed = e.run_until(5.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine e;
  e.run_until(42.0);
  EXPECT_DOUBLE_EQ(e.now(), 42.0);
}

TEST(Engine, MaxEventsCap) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 10; ++i) e.schedule(static_cast<double>(i), [&] { ++fired; });
  EXPECT_EQ(e.run(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, ClearDropsPending) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] { ++fired; });
  e.clear();
  e.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, ZeroDelayRunsAtCurrentTime) {
  Engine e;
  double t = -1.0;
  e.schedule(3.0, [&] {
    e.schedule(0.0, [&] { t = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(t, 3.0);
}

}  // namespace
}  // namespace hermes::sim
