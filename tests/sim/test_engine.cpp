#include "sim/engine.hpp"

#include <gtest/gtest.h>

namespace hermes::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(5.0, [&] { order.push_back(2); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(9.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 9.0);
}

TEST(Engine, FifoAmongSameTimestamp) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedScheduling) {
  Engine e;
  std::vector<double> times;
  e.schedule(1.0, [&] {
    times.push_back(e.now());
    e.schedule(2.0, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] { ++fired; });
  e.schedule(5.0, [&] { ++fired; });
  e.schedule(10.0, [&] { ++fired; });
  const std::size_t executed = e.run_until(5.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine e;
  e.run_until(42.0);
  EXPECT_DOUBLE_EQ(e.now(), 42.0);
}

TEST(Engine, MaxEventsCap) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 10; ++i) e.schedule(static_cast<double>(i), [&] { ++fired; });
  EXPECT_EQ(e.run(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, ClearDropsPending) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] { ++fired; });
  e.clear();
  e.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(e.empty());
}

// Events scheduled *during* execution at the currently-running timestamp
// queue behind every event already pending at that timestamp.
TEST(Engine, FifoWithNestedSameTimeScheduling) {
  Engine e;
  std::vector<int> order;
  e.schedule(1.0, [&] {
    order.push_back(0);
    e.schedule(0.0, [&] { order.push_back(3); });
  });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(1.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// run_until is deadline-inclusive: events AT the deadline run, including
// events an at-deadline event schedules for the deadline itself.
TEST(Engine, RunUntilIncludesDeadlineAndNestedAtDeadline) {
  Engine e;
  std::vector<int> order;
  e.schedule(5.0, [&] {
    order.push_back(0);
    e.schedule(0.0, [&] { order.push_back(1); });   // still at t=5
    e.schedule(0.5, [&] { order.push_back(99); });  // past the deadline
  });
  const std::size_t executed = e.run_until(5.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_EQ(e.pending(), 1u);
}

// Splitting a run into consecutive run_until windows must not reorder
// same-timestamp events relative to one uninterrupted run.
TEST(Engine, SequentialRunUntilWindowsPreserveFifo) {
  std::vector<int> windowed;
  std::vector<int> straight;
  for (int pass = 0; pass < 2; ++pass) {
    Engine e;
    std::vector<int>& order = pass == 0 ? windowed : straight;
    for (int i = 0; i < 4; ++i) {
      e.schedule(10.0, [&order, i] { order.push_back(i); });
      e.schedule(20.0, [&order, i] { order.push_back(10 + i); });
    }
    if (pass == 0) {
      e.run_until(10.0);
      e.run_until(15.0);
      e.run_until(20.0);
    } else {
      e.run_until(20.0);
    }
  }
  EXPECT_EQ(windowed, straight);
  EXPECT_EQ(windowed, (std::vector<int>{0, 1, 2, 3, 10, 11, 12, 13}));
}

TEST(Engine, ScheduleAtUsesAbsoluteTime) {
  Engine e;
  std::vector<double> times;
  e.schedule(4.0, [&] {
    times.push_back(e.now());
    e.schedule_at(6.0, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 4.0);
  EXPECT_DOUBLE_EQ(times[1], 6.0);
}

TEST(Engine, ZeroDelayRunsAtCurrentTime) {
  Engine e;
  double t = -1.0;
  e.schedule(3.0, [&] {
    e.schedule(0.0, [&] { t = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(t, 3.0);
}

}  // namespace
}  // namespace hermes::sim
