#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <memory>

#include "support/rng.hpp"

namespace hermes::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(5.0, [&] { order.push_back(2); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(9.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 9.0);
}

TEST(Engine, FifoAmongSameTimestamp) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedScheduling) {
  Engine e;
  std::vector<double> times;
  e.schedule(1.0, [&] {
    times.push_back(e.now());
    e.schedule(2.0, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] { ++fired; });
  e.schedule(5.0, [&] { ++fired; });
  e.schedule(10.0, [&] { ++fired; });
  const std::size_t executed = e.run_until(5.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine e;
  e.run_until(42.0);
  EXPECT_DOUBLE_EQ(e.now(), 42.0);
}

TEST(Engine, MaxEventsCap) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 10; ++i) e.schedule(static_cast<double>(i), [&] { ++fired; });
  EXPECT_EQ(e.run(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, ClearDropsPending) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] { ++fired; });
  e.clear();
  e.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(e.empty());
}

// Events scheduled *during* execution at the currently-running timestamp
// queue behind every event already pending at that timestamp.
TEST(Engine, FifoWithNestedSameTimeScheduling) {
  Engine e;
  std::vector<int> order;
  e.schedule(1.0, [&] {
    order.push_back(0);
    e.schedule(0.0, [&] { order.push_back(3); });
  });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(1.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// run_until is deadline-inclusive: events AT the deadline run, including
// events an at-deadline event schedules for the deadline itself.
TEST(Engine, RunUntilIncludesDeadlineAndNestedAtDeadline) {
  Engine e;
  std::vector<int> order;
  e.schedule(5.0, [&] {
    order.push_back(0);
    e.schedule(0.0, [&] { order.push_back(1); });   // still at t=5
    e.schedule(0.5, [&] { order.push_back(99); });  // past the deadline
  });
  const std::size_t executed = e.run_until(5.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_EQ(e.pending(), 1u);
}

// Splitting a run into consecutive run_until windows must not reorder
// same-timestamp events relative to one uninterrupted run.
TEST(Engine, SequentialRunUntilWindowsPreserveFifo) {
  std::vector<int> windowed;
  std::vector<int> straight;
  for (int pass = 0; pass < 2; ++pass) {
    Engine e;
    std::vector<int>& order = pass == 0 ? windowed : straight;
    for (int i = 0; i < 4; ++i) {
      e.schedule(10.0, [&order, i] { order.push_back(i); });
      e.schedule(20.0, [&order, i] { order.push_back(10 + i); });
    }
    if (pass == 0) {
      e.run_until(10.0);
      e.run_until(15.0);
      e.run_until(20.0);
    } else {
      e.run_until(20.0);
    }
  }
  EXPECT_EQ(windowed, straight);
  EXPECT_EQ(windowed, (std::vector<int>{0, 1, 2, 3, 10, 11, 12, 13}));
}

TEST(Engine, ScheduleAtUsesAbsoluteTime) {
  Engine e;
  std::vector<double> times;
  e.schedule(4.0, [&] {
    times.push_back(e.now());
    e.schedule_at(6.0, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 4.0);
  EXPECT_DOUBLE_EQ(times[1], 6.0);
}

TEST(Engine, ZeroDelayRunsAtCurrentTime) {
  Engine e;
  double t = -1.0;
  e.schedule(3.0, [&] {
    e.schedule(0.0, [&] { t = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(t, 3.0);
}

// clear() documented semantics: the clock and the FIFO sequence counter
// survive, so events scheduled after a clear() still order behind any
// same-timestamp event scheduled before it on another engine sharing the
// sequence-derived trace, and now() stays monotonic.
TEST(Engine, ClearKeepsClockAndSequence) {
  Engine e;
  e.schedule(7.0, [] {});
  e.run();
  EXPECT_DOUBLE_EQ(e.now(), 7.0);
  e.schedule(1.0, [] {});
  e.clear();
  EXPECT_DOUBLE_EQ(e.now(), 7.0);  // clock not rewound
  // Scheduling still works relative to the preserved clock.
  double fired_at = -1.0;
  e.schedule(2.0, [&] { fired_at = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 9.0);
}

TEST(Engine, ResetRewindsClock) {
  Engine e;
  e.schedule(5.0, [] {});
  e.schedule(9.0, [] {});
  e.run(1);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  e.reset();
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
  std::vector<int> order;
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(1.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
}

// The event pool must recycle slots: repeating a bounded-pending workload
// (with clear() or reset() between repetitions) cannot grow the slab.
TEST(Engine, PoolSlotsAreReusedAcrossRepetitions) {
  Engine e;
  auto repetition = [&e] {
    for (int i = 0; i < 200; ++i) {
      e.schedule(static_cast<double>(i % 17), [] {});
    }
    e.run();
  };
  repetition();
  const std::size_t warm = e.pool_capacity();
  EXPECT_GT(warm, 0u);
  for (int rep = 0; rep < 5; ++rep) {
    e.reset();
    repetition();
    EXPECT_EQ(e.pool_capacity(), warm);
  }
  // clear() with events still pending also releases their slots.
  for (int i = 0; i < 100; ++i) e.schedule(1.0, [] {});
  e.clear();
  repetition();
  EXPECT_EQ(e.pool_capacity(), warm);
}

// Captures larger than the inline buffer take the heap fallback; they must
// still execute and destroy exactly once (exercised under ASan).
TEST(Engine, LargeCapturesExecuteAndDestroy) {
  Engine e;
  auto counter = std::make_shared<int>(0);
  struct Big {
    std::shared_ptr<int> counter;
    std::array<std::uint64_t, 16> bulk{};  // > EventFn::kInlineBytes
  };
  static_assert(sizeof(Big) > EventFn::kInlineBytes);
  for (int i = 0; i < 8; ++i) {
    Big big{counter, {}};
    e.schedule(1.0, [big] { ++*big.counter; });
  }
  // One scheduled-then-cleared large capture must also be destroyed.
  e.schedule(2.0, [big = Big{counter, {}}] { ++*big.counter; });
  e.run_until(1.0);
  e.clear();
  EXPECT_EQ(*counter, 8);
  EXPECT_EQ(counter.use_count(), 1);
}

// Randomized stress: the ladder queue must execute an adversarial mix of
// up-front, nested, duplicate-timestamp, and far-future schedules in
// exactly the (when, seq) total order. The reference order is recomputed
// with a stable sort over the recorded (when, insertion index) pairs.
TEST(Engine, RandomizedOrderMatchesStableSortReference) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    Engine e;
    Rng rng(seed);
    struct Rec {
      double when;
      std::uint64_t idx;
    };
    std::vector<Rec> scheduled;
    std::vector<std::uint64_t> executed;
    std::uint64_t next_idx = 0;
    // Pull delays from a few disjoint magnitude bands so spreads, rung
    // routing, and the far-future overflow all get exercised.
    auto random_delay = [&rng]() -> double {
      switch (rng.uniform_u64(4)) {
        case 0: return 0.0;
        case 1: return std::floor(rng.uniform_real(0.0, 8.0));  // collisions
        case 2: return rng.uniform_real(0.0, 50.0);
        default: return rng.uniform_real(500.0, 5000.0);
      }
    };
    std::function<void()> maybe_nest = [&] {
      if (rng.uniform_u64(3) != 0) return;
      const double d = random_delay();
      const std::uint64_t idx = next_idx++;
      scheduled.push_back({e.now() + d, idx});
      e.schedule(d, [&, idx] {
        executed.push_back(idx);
        maybe_nest();
      });
    };
    for (int i = 0; i < 2000; ++i) {
      const double d = random_delay();
      const std::uint64_t idx = next_idx++;
      scheduled.push_back({d, idx});
      e.schedule(d, [&, idx] {
        executed.push_back(idx);
        maybe_nest();
      });
    }
    e.run();
    ASSERT_EQ(executed.size(), scheduled.size()) << "seed " << seed;
    std::stable_sort(scheduled.begin(), scheduled.end(),
                     [](const Rec& a, const Rec& b) { return a.when < b.when; });
    for (std::size_t i = 0; i < scheduled.size(); ++i) {
      ASSERT_EQ(executed[i], scheduled[i].idx)
          << "seed " << seed << " position " << i;
    }
  }
}

// Interleaving run_until windows with fresh schedules (the fuzzer's
// injection pattern) across spread boundaries keeps the same totals and
// order as one straight run.
TEST(Engine, WindowedRunMatchesStraightRunUnderLoad) {
  auto drive = [](bool windowed) {
    Engine e;
    Rng rng(99);
    std::vector<std::uint64_t> executed;
    std::uint64_t idx = 0;
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < 100; ++i) {
        const double d = rng.uniform_real(0.0, 300.0);
        const std::uint64_t id = idx++;
        e.schedule(d, [&executed, id] { executed.push_back(id); });
      }
      if (windowed) e.run_until(e.now() + 25.0);
    }
    e.run();
    return executed;
  };
  // Note both drives schedule from identical Rng streams at identical
  // times: the windowed drive injects later batches at a later now(), so
  // only compare against the windowed reference re-run, not the straight
  // one; the straight drive just checks nothing is lost.
  EXPECT_EQ(drive(true), drive(true));
  EXPECT_EQ(drive(false).size(), 2000u);
}

}  // namespace
}  // namespace hermes::sim
