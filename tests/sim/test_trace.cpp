#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "../protocols/harness.hpp"
#include "hermes/hermes_node.hpp"

namespace hermes::sim {
namespace {

TEST(TraceCollector, BucketsAndTotals) {
  TraceCollector trace(100.0);
  trace.record(10.0, 0, 1, 7, 200);
  trace.record(50.0, 1, 2, 7, 200);
  trace.record(150.0, 2, 3, 7, 200);
  trace.record(20.0, 0, 2, 9, 50);
  EXPECT_EQ(trace.count_in_bucket(7, 0.0), 2u);
  EXPECT_EQ(trace.count_in_bucket(7, 199.0), 1u);
  EXPECT_EQ(trace.count_in_bucket(9, 0.0), 1u);
  EXPECT_EQ(trace.count_in_bucket(9, 500.0), 0u);
  EXPECT_EQ(trace.totals_by_type().at(7), 3u);
  EXPECT_EQ(trace.bytes_by_type().at(7), 600u);
  EXPECT_EQ(trace.total_messages(), 4u);
}

TEST(TraceCollector, SeriesCoversGaps) {
  TraceCollector trace(100.0);
  trace.record(10.0, 0, 1, 3, 10);
  trace.record(350.0, 0, 1, 3, 10);
  const auto series = trace.series(3);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0], 1u);
  EXPECT_EQ(series[1], 0u);
  EXPECT_EQ(series[2], 0u);
  EXPECT_EQ(series[3], 1u);
  EXPECT_TRUE(trace.series(99).empty());
}

TEST(TraceCollector, NodeLogBounded) {
  TraceCollector trace(100.0, /*per_node_log_limit=*/3);
  for (int i = 0; i < 10; ++i) {
    trace.record(static_cast<double>(i), 5, 6, 1, 10);
  }
  const auto& log = trace.node_log(5);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log.front().at, 7.0);  // oldest kept
  EXPECT_DOUBLE_EQ(log.back().at, 9.0);
  EXPECT_TRUE(trace.node_log(99).empty());
}

TEST(TraceCollector, Sparkline) {
  TraceCollector trace(100.0);
  for (int i = 0; i < 9; ++i) trace.record(10.0, 0, 1, 1, 10);
  trace.record(150.0, 0, 1, 1, 10);
  const std::string line = trace.sparkline(1);
  ASSERT_EQ(line.size(), 2u);
  EXPECT_EQ(line[0], '@');  // peak bucket
  EXPECT_NE(line[1], '@');
  EXPECT_NE(line[1], ' ');
}

TEST(TraceCollector, TapsARealHermesRun) {
  using namespace hermes::protocols;
  hermes_proto::HermesConfig config;
  config.f = 1;
  config.k = 3;
  config.builder.annealing.initial_temperature = 5.0;
  config.builder.annealing.min_temperature = 1.0;
  config.builder.annealing.cooling_rate = 0.8;
  hermes_proto::HermesProtocol protocol(config);
  testing::World w(30, protocol);
  TraceCollector trace(50.0);
  w.ctx->network.set_send_tap([&trace](const Message& m, SimTime at) {
    trace.record(at, m.src, m.dst, m.type, m.wire_bytes);
  });
  w.start();
  const Transaction tx = w.send_from(2);
  w.run_ms(5000);
  (void)tx;
  const auto totals = trace.totals_by_type();
  // The TRS exchange and the data dissemination both show up.
  EXPECT_GT(totals.at(hermes_proto::HermesNode::kMsgTrsEcho), 0u);
  EXPECT_GT(totals.at(hermes_proto::HermesNode::kMsgData), 25u);
  // Data messages dominate the bytes (payload-sized).
  const auto bytes = trace.bytes_by_type();
  EXPECT_GT(bytes.at(hermes_proto::HermesNode::kMsgData),
            bytes.at(hermes_proto::HermesNode::kMsgTrsEcho));
  // The sender's recent-send log is populated.
  EXPECT_FALSE(trace.node_log(2).empty());
}

}  // namespace
}  // namespace hermes::sim
