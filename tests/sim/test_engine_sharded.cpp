// Region-sharded engine semantics: shard-stable sequence numbers, the
// conservative window loop, cross-shard mailboxes, deferred global
// effects, and the determinism-across-workers contract. The unsharded
// (classic) path is covered by test_engine.cpp.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace hermes::sim {
namespace {

struct Rec {
  double when;
  std::uint32_t shard;
  std::uint64_t id;
  bool operator==(const Rec& o) const {
    return when == o.when && shard == o.shard && id == o.id;
  }
};

// Self-rescheduling workload touching every scheduling path: in-lane
// timers, cross-shard hops at the lookahead horizon, and control events.
// All observations go through defer(), whose replay order is the canonical
// (when, seq, idx) order of the sequential execution.
struct Timer {
  Engine* e;
  std::shared_ptr<std::vector<Rec>> log;
  std::uint32_t shard;
  std::uint64_t id;
  int remaining;
  double period;

  void operator()() {
    Engine* eng = e;
    auto lg = log;
    const Rec rec{eng->now(), shard, id};
    eng->defer([lg, rec] { lg->push_back(rec); });
    if (remaining <= 0) return;
    Timer next = *this;
    --next.remaining;
    next.id += 1000;
    eng->schedule(period, next);
    if (remaining % 3 == 0) {
      const std::uint32_t dst = (shard + 1) % 4;
      Timer hop = *this;
      hop.shard = dst;
      hop.remaining = 0;
      hop.id += 500000;
      eng->schedule_cross(dst, eng->now() + 10.0 + 0.5 * double(id % 7),
                          std::move(hop));
    }
    if (remaining == 2) {
      eng->schedule_global(0.0, [lg, rec] {
        lg->push_back(Rec{rec.when, 99, rec.id + 900000});
      });
    }
  }
};
static_assert(sizeof(Timer) <= EventFn::kInlineBytes);

std::vector<Rec> drive(std::size_t workers) {
  Engine e;
  e.configure_shards(4, 10.0);
  e.set_workers(workers);
  auto log = std::make_shared<std::vector<Rec>>();
  for (std::uint32_t s = 0; s < 4; ++s) {
    Engine::ShardScope scope(e, s);
    for (int k = 0; k < 8; ++k) {
      e.schedule(0.5 * double(s + 1) + double(k),
                 Timer{&e, log, s, s * 100ULL + std::uint64_t(k), 12,
                       3.0 + 0.25 * double(s)});
    }
  }
  e.run_until(200.0);
  return *log;
}

// The headline contract: the observed event sequence is bit-identical for
// every worker count, including the sequential workers == 1 drive.
TEST(EngineSharded, ObservationOrderIdenticalAcrossWorkerCounts) {
  const std::vector<Rec> base = drive(1);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(drive(2), base);
  EXPECT_EQ(drive(4), base);
  EXPECT_EQ(drive(8), base);
}

// Shard-stable seq regression: among same-time events from different
// lanes, execution order is by shard id — a function of simulation content
// — not by insertion order (a global FIFO counter would order these by
// who scheduled first, which under parallel drains is a race).
TEST(EngineSharded, SameTimeCrossLaneOrderIsByShardNotInsertion) {
  Engine e;
  e.configure_shards(2, 5.0);
  auto log = std::make_shared<std::vector<int>>();
  {
    Engine::ShardScope scope(e, 1);  // lane 1 schedules FIRST
    e.schedule_at(7.0, [&e, log] { e.defer([log] { log->push_back(1); }); });
  }
  {
    Engine::ShardScope scope(e, 0);  // lane 0 schedules second
    e.schedule_at(7.0, [&e, log] { e.defer([log] { log->push_back(0); }); });
  }
  e.run_until(10.0);
  EXPECT_EQ(*log, (std::vector<int>{0, 1}));
}

// Cross-shard sends over one (src, dst) link preserve send order: equal
// delivery times tie-break on the source-assigned seq, which increases in
// send order.
TEST(EngineSharded, CrossShardFifoPerLink) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    Engine e;
    e.configure_shards(2, 5.0);
    e.set_workers(workers);
    auto log = std::make_shared<std::vector<int>>();
    {
      Engine::ShardScope scope(e, 0);
      e.schedule_at(1.0, [&e, log] {
        for (int i = 0; i < 4; ++i) {
          e.schedule_cross(1, 20.0, [&e, log, i] {
            e.defer([log, i] { log->push_back(i); });
          });
        }
        // Distinct delivery times arrive in time order regardless of the
        // order the sends were issued in.
        e.schedule_cross(1, 31.0, [&e, log] {
          e.defer([log] { log->push_back(11); });
        });
        e.schedule_cross(1, 30.0, [&e, log] {
          e.defer([log] { log->push_back(10); });
        });
      });
    }
    e.run_until(40.0);
    EXPECT_EQ(*log, (std::vector<int>{0, 1, 2, 3, 10, 11})) << "workers "
                                                            << workers;
  }
}

// Control events run with all lanes quiescent and order after same-time
// lane events (the control lane carries the highest seq tag).
TEST(EngineSharded, ControlRunsQuiescentAfterSameTimeLaneEvents) {
  Engine e;
  e.configure_shards(2, 5.0);
  auto log = std::make_shared<std::vector<int>>();
  e.schedule_global_at(5.0, [&e, log] {
    EXPECT_FALSE(e.in_shard_drain());
    log->push_back(100);
  });
  {
    Engine::ShardScope scope(e, 1);
    e.schedule_at(5.0, [&e, log] {
      EXPECT_TRUE(e.in_shard_drain());
      e.defer([log] { log->push_back(1); });
    });
  }
  e.run_until(10.0);
  EXPECT_EQ(*log, (std::vector<int>{1, 100}));
}

// schedule_global from inside a draining lane lands at the earliest
// quiescent point — never before the current window bound.
TEST(EngineSharded, GlobalFromLaneDefersToWindowBarrier) {
  Engine e;
  e.configure_shards(2, 5.0);
  auto log = std::make_shared<std::vector<double>>();
  {
    Engine::ShardScope scope(e, 0);
    e.schedule_at(1.0, [&e, log] {
      e.schedule_global(0.0, [&e, log] {
        EXPECT_FALSE(e.in_shard_drain());
        log->push_back(e.now());
      });
    });
  }
  e.run_until(50.0);
  ASSERT_EQ(log->size(), 1u);
  // At or after the scheduling event's window bound (>= its timestamp).
  EXPECT_GE((*log)[0], 1.0);
}

// Cross-shard inserts below the lookahead horizon are a correctness error
// and must trip loudly instead of silently reordering.
TEST(EngineShardedDeathTest, CrossShardBelowLookaheadTrips) {
  auto violate = [] {
    Engine e;
    e.configure_shards(2, 5.0);
    {
      Engine::ShardScope scope(e, 0);
      e.schedule_at(1.0, [&e] { e.schedule_cross(1, e.now() + 1.0, [] {}); });
    }
    e.run_until(10.0);
  };
  EXPECT_DEATH(violate(), "lookahead");
}

// defer() outside any drain runs the effect immediately — unsharded code
// and control events see unchanged semantics.
TEST(EngineSharded, DeferOutsideDrainRunsImmediately) {
  Engine e;
  e.configure_shards(2, 5.0);
  int fired = 0;
  e.defer([&fired] { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST(EngineSharded, WorkersZeroResolvesToHardwareConcurrency) {
  Engine e;
  e.configure_shards(4, 10.0);
  e.set_workers(0);
  EXPECT_GE(e.workers(), 1u);
}

// reset() rewinds a sharded engine to its freshly configured state.
TEST(EngineSharded, ResetRewindsShardedEngine) {
  auto run_once = [](Engine& e) {
    auto log = std::make_shared<std::vector<Rec>>();
    for (std::uint32_t s = 0; s < 2; ++s) {
      Engine::ShardScope scope(e, s);
      e.schedule(1.0 + double(s),
                 Timer{&e, log, s, s * 10ULL, 4, 2.0});
    }
    e.run_until(30.0);
    return *log;
  };
  Engine e;
  e.configure_shards(4, 5.0);  // Timer's cross hops target (shard + 1) % 4
  const auto first = run_once(e);
  ASSERT_FALSE(first.empty());
  e.reset();
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(run_once(e), first);
}

}  // namespace
}  // namespace hermes::sim
