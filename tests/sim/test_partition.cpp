// Network partition tests: the simulator's split-brain switch and the
// protocols' behaviour across a partition + heal cycle.
#include <gtest/gtest.h>

#include "../protocols/harness.hpp"
#include "protocols/l0.hpp"

namespace hermes::protocols {
namespace {

using testing::World;

std::vector<int> half_split(std::size_t n) {
  std::vector<int> partition(n, 0);
  for (std::size_t v = n / 2; v < n; ++v) partition[v] = 1;
  return partition;
}

TEST(Partition, MessagesDoNotCrossPartitions) {
  GossipProtocol protocol;
  World w(30, protocol);
  w.start();
  w.ctx->network.set_partition(half_split(30));
  const Transaction tx = w.send_from(0);  // partition 0
  w.run_ms(4000);
  for (net::NodeId v = 15; v < 30; ++v) {
    EXPECT_FALSE(w.ctx->tracker.delivered(tx.id, v)) << v;
  }
  // The sender's own side is fully covered (gossip within the partition).
  std::size_t own_side = 0;
  for (net::NodeId v = 1; v < 15; ++v) {
    if (w.ctx->tracker.delivered(tx.id, v)) ++own_side;
  }
  EXPECT_GT(own_side, 10u);
}

TEST(Partition, HealRestoresConnectivity) {
  GossipProtocol protocol;
  World w(30, protocol);
  w.start();
  w.ctx->network.set_partition(half_split(30));
  EXPECT_TRUE(w.ctx->network.is_partitioned());
  w.ctx->network.heal_partition();
  EXPECT_FALSE(w.ctx->network.is_partitioned());
  const Transaction tx = w.send_from(0);
  w.run_ms(4000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
}

TEST(Partition, L0ReconciliationHealsAfterPartition) {
  // A tx spreads on one side during the partition; after healing, LØ's
  // periodic reconciliation carries it across — the mempool repair story.
  L0Protocol protocol;
  World w(30, protocol);
  w.start();
  w.ctx->network.set_partition(half_split(30));
  const Transaction tx = w.send_from(2);
  w.run_ms(4000);
  double before = honest_coverage(*w.ctx, tx);
  EXPECT_LT(before, 0.6);
  w.ctx->network.heal_partition();
  w.run_ms(15000);
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.95);
}

TEST(Partition, DroppedCounterAccountsForCrossTraffic) {
  GossipProtocol protocol;
  World w(20, protocol);
  w.start();
  w.ctx->network.set_partition(half_split(20));
  const auto dropped_before = w.ctx->network.dropped_messages();
  w.send_from(0);
  w.run_ms(3000);
  EXPECT_GT(w.ctx->network.dropped_messages(), dropped_before);
}

}  // namespace
}  // namespace hermes::protocols
