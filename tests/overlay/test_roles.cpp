#include "overlay/roles.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "overlay/builder.hpp"

namespace hermes::overlay {
namespace {

std::vector<Overlay> build_set(std::size_t n, std::size_t k, bool optimize) {
  net::TopologyParams tparams;
  tparams.node_count = n;
  tparams.min_degree = 5;
  Rng trng(66);
  const net::Topology topo = net::make_topology(tparams, trng);
  BuilderParams params;
  params.f = 1;
  params.k = k;
  params.optimize = optimize;
  params.annealing.initial_temperature = 5.0;
  params.annealing.min_temperature = 1.0;
  params.annealing.cooling_rate = 0.8;
  Rng rng(67);
  return build_overlay_set(topo.graph, params, rng).overlays;
}

TEST(Roles, CountsSumToK) {
  const auto overlays = build_set(40, 6, false);
  const RoleDistribution dist = role_distribution(overlays);
  for (const auto& per_node : dist.counts) {
    std::size_t total = 0;
    for (std::size_t d = 1; d < per_node.size(); ++d) total += per_node[d];
    EXPECT_EQ(total, 6u);
  }
}

TEST(Roles, EntryAppearancesMatchFPlusOnePerOverlay) {
  const auto overlays = build_set(40, 6, false);
  const RoleDistribution dist = role_distribution(overlays);
  std::size_t total_entries = 0;
  for (net::NodeId v = 0; v < dist.counts.size(); ++v) {
    total_entries += dist.entry_appearances(v);
  }
  // k overlays, each with f+1 = 2 entry points.
  EXPECT_EQ(total_entries, 12u);
}

TEST(Roles, RanksRotateSoNoNodeAlwaysEntry) {
  const auto overlays = build_set(40, 8, false);
  const RoleDistribution dist = role_distribution(overlays);
  for (net::NodeId v = 0; v < dist.counts.size(); ++v) {
    EXPECT_LT(dist.entry_appearances(v), 8u)
        << "node " << v << " is entry point in every overlay";
  }
}

TEST(Roles, MeanDepthComputation) {
  const auto overlays = build_set(30, 4, false);
  const RoleDistribution dist = role_distribution(overlays);
  for (net::NodeId v = 0; v < 30; ++v) {
    double expected = 0.0;
    for (const Overlay& o : overlays) {
      expected += static_cast<double>(o.depth(v));
    }
    expected /= 4.0;
    EXPECT_NEAR(dist.mean_depth(v), expected, 1e-12);
  }
}

TEST(Roles, FairnessMetricsPopulated) {
  const auto overlays = build_set(40, 6, false);
  const FairnessMetrics m = fairness_metrics(overlays);
  EXPECT_GT(m.load_stddev, 0.0);
  EXPECT_GE(m.mean_depth_stddev, 0.0);
  EXPECT_LE(m.max_entry_appearances, 6u);
}

TEST(Roles, RotationBeatsSingleOverlayRepeated) {
  // Rank-balanced sets spread mean depth much better than using the same
  // overlay k times.
  const auto rotated = build_set(40, 6, false);
  std::vector<Overlay> repeated(6, rotated[0]);
  const FairnessMetrics fair = fairness_metrics(rotated);
  const FairnessMetrics unfair = fairness_metrics(repeated);
  EXPECT_LT(fair.mean_depth_stddev, unfair.mean_depth_stddev);
}

}  // namespace
}  // namespace hermes::overlay
