#include "overlay/annealing.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "overlay/builder.hpp"

namespace hermes::overlay {
namespace {

struct AnnealFixture {
  net::Topology topo;
  Overlay tree;
  RankTable ranks;
};

AnnealFixture make_setup(std::size_t n = 50, std::size_t f = 1) {
  net::TopologyParams params;
  params.node_count = n;
  params.min_degree = 5;
  params.connectivity = 2;
  Rng rng(21);
  AnnealFixture s{net::make_topology(params, rng), Overlay{}, RankTable(n, 0.0)};
  RobustTreeParams tree_params;
  tree_params.f = f;
  RankTable build_ranks(n, 0.0);
  s.tree = build_robust_tree(s.topo.graph, tree_params, build_ranks);
  return s;
}

AnnealingParams fast_params() {
  AnnealingParams p;
  p.initial_temperature = 10.0;
  p.min_temperature = 0.5;
  p.cooling_rate = 0.9;
  p.moves_per_temperature = 4;
  return p;
}

TEST(Objective, PenalizesMissingConnectivity) {
  AnnealFixture s = make_setup();
  const ObjectiveWeights w;
  const double before = objective_value(s.tree, s.ranks, w);
  // Strip a predecessor from some mid-tree node.
  Overlay damaged = s.tree;
  for (net::NodeId v = 0; v < damaged.node_count(); ++v) {
    if (!damaged.is_entry(v) && damaged.predecessors(v).size() == damaged.f() + 1) {
      damaged.remove_link(damaged.predecessors(v)[0], v);
      break;
    }
  }
  EXPECT_GT(objective_value(damaged, s.ranks, w), before - 1e9);
  EXPECT_GT(objective_value(damaged, s.ranks, w), before);
}

TEST(Objective, FewerEdgesScoreBetterWhenNothingElseChanges) {
  // A redundant extra edge should raise the objective via the edge term
  // (latency can only improve or stay equal, but the weights make one edge
  // dominate a tiny latency improvement on an already-short path).
  AnnealFixture s = make_setup();
  ObjectiveWeights w;
  w.latency = 0.0;  // isolate the edge term
  const double before = objective_value(s.tree, s.ranks, w);
  Overlay more = s.tree;
  // Add any missing consecutive-layer edge.
  const auto layers = more.layers();
  bool added = false;
  for (std::size_t d = 1; d + 1 < layers.size() && !added; ++d) {
    for (net::NodeId p : layers[d]) {
      for (net::NodeId c : layers[d + 1]) {
        if (!more.has_link(p, c)) {
          more.add_link(p, c, 1.0);
          added = true;
          break;
        }
      }
      if (added) break;
    }
  }
  ASSERT_TRUE(added);
  EXPECT_GT(objective_value(more, s.ranks, w), before);
}

TEST(Objective, RankPenaltyDiscouragesAlreadyFavoredNodesNearRoot) {
  AnnealFixture s = make_setup();
  ObjectiveWeights w;
  w.edges = 0.0;
  w.latency = 0.0;
  // Ranks accumulate root proximity: entries that were already favored
  // (high rank) should be penalized when placed at the root again.
  RankTable ranks_favored(s.tree.node_count(), 10.0);
  for (net::NodeId e : s.tree.entry_points()) ranks_favored[e] = 30.0;
  RankTable ranks_fresh(s.tree.node_count(), 10.0);
  for (net::NodeId e : s.tree.entry_points()) ranks_fresh[e] = 0.0;
  EXPECT_GT(objective_value(s.tree, ranks_favored, w),
            objective_value(s.tree, ranks_fresh, w));
}

TEST(GenerateNeighbor, PreservesValidity) {
  AnnealFixture s = make_setup();
  Rng rng(3);
  const AnnealingParams params = fast_params();
  Overlay current = s.tree;
  for (int i = 0; i < 30; ++i) {
    current = generate_neighbor(current, s.topo.graph, s.ranks, params, rng);
    const auto errors = current.validate();
    ASSERT_TRUE(errors.empty()) << "iteration " << i << ": " << errors[0];
  }
}

TEST(Anneal, NeverWorseThanInitial) {
  AnnealFixture s = make_setup();
  Rng rng(4);
  const AnnealingParams params = fast_params();
  const double initial = objective_value(s.tree, s.ranks, params.weights);
  const Overlay optimized = anneal(s.tree, s.topo.graph, s.ranks, params, rng);
  EXPECT_LE(objective_value(optimized, s.ranks, params.weights), initial);
}

TEST(Anneal, ResultIsValid) {
  AnnealFixture s = make_setup(60, 2);
  Rng rng(5);
  const Overlay optimized =
      anneal(s.tree, s.topo.graph, s.ranks, fast_params(), rng);
  const auto errors = optimized.validate();
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
}

TEST(Anneal, PrunesEdgesFromDenseBicliqueTree) {
  // On a complete physical graph the robust tree is built from full
  // bicliques between layers; annealing should prune a meaningful share of
  // those redundant links while keeping the structure valid. (On sparse
  // graphs the repair step may legitimately *add* edges to reach f+1
  // successors, so this property is specific to dense initial trees.)
  net::Graph g(30);
  for (net::NodeId a = 0; a < 30; ++a) {
    for (net::NodeId b = a + 1; b < 30; ++b) {
      g.add_edge(a, b, 1.0 + (a * 7 + b) % 13);
    }
  }
  RobustTreeParams tree_params;
  tree_params.f = 1;
  RankTable build_ranks(30, 0.0);
  const Overlay tree = build_robust_tree(g, tree_params, build_ranks);
  Rng rng(6);
  AnnealingParams params = fast_params();
  params.initial_temperature = 20.0;
  params.moves_per_temperature = 10;
  const RankTable ranks(30, 0.0);
  const Overlay optimized = anneal(tree, g, ranks, params, rng);
  EXPECT_LT(optimized.edge_count(), tree.edge_count());
  EXPECT_TRUE(optimized.is_valid());
}

TEST(Anneal, GreedyNeighborFilterMode) {
  AnnealFixture s = make_setup();
  Rng rng(7);
  AnnealingParams params = fast_params();
  params.greedy_neighbor_filter = true;
  const double initial = objective_value(s.tree, s.ranks, params.weights);
  const Overlay optimized = anneal(s.tree, s.topo.graph, s.ranks, params, rng);
  EXPECT_LE(objective_value(optimized, s.ranks, params.weights), initial);
  EXPECT_TRUE(optimized.is_valid());
}

TEST(Anneal, DeterministicGivenSeed) {
  AnnealFixture s = make_setup();
  Rng r1(9), r2(9);
  const AnnealingParams params = fast_params();
  const Overlay a = anneal(s.tree, s.topo.graph, s.ranks, params, r1);
  const Overlay b = anneal(s.tree, s.topo.graph, s.ranks, params, r2);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (net::NodeId v = 0; v < a.node_count(); ++v) {
    ASSERT_EQ(a.successors(v), b.successors(v));
  }
}

TEST(Builder, BuildsKValidOptimizedOverlays) {
  net::TopologyParams tparams;
  tparams.node_count = 50;
  tparams.min_degree = 5;
  Rng trng(22);
  const net::Topology topo = net::make_topology(tparams, trng);

  BuilderParams params;
  params.f = 1;
  params.k = 4;
  params.annealing = fast_params();
  Rng rng(23);
  const OverlaySet set = build_overlay_set(topo.graph, params, rng);
  ASSERT_EQ(set.overlays.size(), 4u);
  for (const Overlay& o : set.overlays) {
    const auto errors = o.validate();
    EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  }
  // Final ranks equal the accumulated root-proximity across overlays.
  for (net::NodeId v = 0; v < 50; ++v) {
    double expected = 0.0;
    for (const Overlay& o : set.overlays) {
      expected += static_cast<double>(o.max_depth()) -
                  static_cast<double>(o.depth(v)) + 1.0;
    }
    EXPECT_DOUBLE_EQ(set.final_ranks[v], expected);
  }
}

TEST(Builder, UnoptimizedModeSkipsAnnealing) {
  net::TopologyParams tparams;
  tparams.node_count = 40;
  Rng trng(24);
  const net::Topology topo = net::make_topology(tparams, trng);
  BuilderParams params;
  params.f = 1;
  params.k = 2;
  params.optimize = false;
  Rng rng(25);
  const OverlaySet set = build_overlay_set(topo.graph, params, rng);
  for (const Overlay& o : set.overlays) EXPECT_TRUE(o.is_valid());
}

}  // namespace
}  // namespace hermes::overlay
