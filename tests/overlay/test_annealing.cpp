#include "overlay/annealing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "net/topology.hpp"
#include "overlay/builder.hpp"
#include "support/thread_pool.hpp"

namespace hermes::overlay {
namespace {

struct AnnealFixture {
  net::Topology topo;
  Overlay tree;
  RankTable ranks;
};

AnnealFixture make_setup(std::size_t n = 50, std::size_t f = 1) {
  net::TopologyParams params;
  params.node_count = n;
  params.min_degree = 5;
  params.connectivity = 2;
  Rng rng(21);
  AnnealFixture s{net::make_topology(params, rng), Overlay{}, RankTable(n, 0.0)};
  RobustTreeParams tree_params;
  tree_params.f = f;
  RankTable build_ranks(n, 0.0);
  s.tree = build_robust_tree(s.topo.graph, tree_params, build_ranks);
  return s;
}

AnnealingParams fast_params() {
  AnnealingParams p;
  p.initial_temperature = 10.0;
  p.min_temperature = 0.5;
  p.cooling_rate = 0.9;
  p.moves_per_temperature = 4;
  return p;
}

TEST(Objective, PenalizesMissingConnectivity) {
  AnnealFixture s = make_setup();
  const ObjectiveWeights w;
  const double before = objective_value(s.tree, s.ranks, w);
  // Strip a predecessor from some mid-tree node.
  Overlay damaged = s.tree;
  for (net::NodeId v = 0; v < damaged.node_count(); ++v) {
    if (!damaged.is_entry(v) && damaged.predecessors(v).size() == damaged.f() + 1) {
      damaged.remove_link(damaged.predecessors(v)[0], v);
      break;
    }
  }
  EXPECT_GT(objective_value(damaged, s.ranks, w), before - 1e9);
  EXPECT_GT(objective_value(damaged, s.ranks, w), before);
}

TEST(Objective, FewerEdgesScoreBetterWhenNothingElseChanges) {
  // A redundant extra edge should raise the objective via the edge term
  // (latency can only improve or stay equal, but the weights make one edge
  // dominate a tiny latency improvement on an already-short path).
  AnnealFixture s = make_setup();
  ObjectiveWeights w;
  w.latency = 0.0;  // isolate the edge term
  const double before = objective_value(s.tree, s.ranks, w);
  Overlay more = s.tree;
  // Add any missing consecutive-layer edge.
  const auto layers = more.layers();
  bool added = false;
  for (std::size_t d = 1; d + 1 < layers.size() && !added; ++d) {
    for (net::NodeId p : layers[d]) {
      for (net::NodeId c : layers[d + 1]) {
        if (!more.has_link(p, c)) {
          more.add_link(p, c, 1.0);
          added = true;
          break;
        }
      }
      if (added) break;
    }
  }
  ASSERT_TRUE(added);
  EXPECT_GT(objective_value(more, s.ranks, w), before);
}

TEST(Objective, RankPenaltyDiscouragesAlreadyFavoredNodesNearRoot) {
  AnnealFixture s = make_setup();
  ObjectiveWeights w;
  w.edges = 0.0;
  w.latency = 0.0;
  // Ranks accumulate root proximity: entries that were already favored
  // (high rank) should be penalized when placed at the root again.
  RankTable ranks_favored(s.tree.node_count(), 10.0);
  for (net::NodeId e : s.tree.entry_points()) ranks_favored[e] = 30.0;
  RankTable ranks_fresh(s.tree.node_count(), 10.0);
  for (net::NodeId e : s.tree.entry_points()) ranks_fresh[e] = 0.0;
  EXPECT_GT(objective_value(s.tree, ranks_favored, w),
            objective_value(s.tree, ranks_fresh, w));
}

TEST(Objective, EmptyOverlayScoresZero) {
  const Overlay empty;
  const RankTable no_ranks;
  const ObjectiveWeights w;
  EXPECT_EQ(objective_value(empty, no_ranks, w), 0.0);
}

TEST(Objective, AllUnreachableStaysFinite) {
  // No entry points: every node is unreachable. The latency term must not
  // divide by zero or go NaN; the path penalty carries the pressure.
  Overlay o(4, 1);
  for (net::NodeId v = 0; v < 4; ++v) o.set_depth(v, v + 1);
  const RankTable ranks(4, 1.0);
  const ObjectiveWeights w;
  const double val = objective_value(o, ranks, w);
  EXPECT_TRUE(std::isfinite(val));
  EXPECT_GE(val, w.path * 4.0);  // all 4 nodes unreachable

  // Single unplaced node: nothing reachable either.
  Overlay one(1, 0);
  const double lone = objective_value(one, RankTable(1, 0.0), w);
  EXPECT_TRUE(std::isfinite(lone));
}

TEST(IncrementalObjective, MatchesScratchAfterThousandRandomMoves) {
  AnnealFixture s = make_setup(60, 1);
  const ObjectiveWeights w;
  IncrementalObjective state(s.tree, s.ranks, w);
  Rng rng(17);
  const std::size_t n = state.overlay().node_count();

  std::size_t applied = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.uniform01() < 0.5 && state.components().edges > 0) {
      // Remove a uniformly random edge.
      std::uint64_t target = rng.uniform_u64(
          static_cast<std::uint64_t>(state.components().edges));
      for (net::NodeId p = 0; p < n; ++p) {
        const auto& succ = state.overlay().successors(p);
        if (target < succ.size()) {
          ASSERT_TRUE(state.remove_link(p, succ[target], nullptr));
          ++applied;
          break;
        }
        target -= succ.size();
      }
    } else {
      // Random (possibly invalid) pair; add_link filters bad depth pairs.
      const net::NodeId p = static_cast<net::NodeId>(rng.uniform_u64(n));
      const net::NodeId c = static_cast<net::NodeId>(rng.uniform_u64(n));
      if (state.add_link(p, c, 1.0 + rng.uniform01() * 40.0, nullptr)) {
        ++applied;
      }
    }
    if (i % 97 == 0) state.flush();  // mix mid-stream and deferred flushes
  }
  state.flush();
  ASSERT_GT(applied, 100u);

  // Latencies must be value-identical to a scratch Dijkstra: the dirty-node
  // sweep recomputes exact minima, not approximations.
  const auto scratch_dist = state.overlay().dissemination_latencies();
  const auto& inc_dist = state.latencies();
  ASSERT_EQ(scratch_dist.size(), inc_dist.size());
  for (std::size_t v = 0; v < scratch_dist.size(); ++v) {
    EXPECT_DOUBLE_EQ(scratch_dist[v], inc_dist[v]) << "node " << v;
  }

  // Counting terms are exact; the running latency sum may differ from the
  // scratch sum by float-accumulation order only.
  const ObjectiveComponents scratch =
      objective_components(state.overlay(), s.ranks);
  EXPECT_EQ(scratch.edges, state.components().edges);
  EXPECT_EQ(scratch.unreachable, state.components().unreachable);
  EXPECT_EQ(scratch.connectivity_deficit,
            state.components().connectivity_deficit);
  EXPECT_DOUBLE_EQ(scratch.rank_penalty, state.components().rank_penalty);
  EXPECT_NEAR(scratch.latency_sum, state.components().latency_sum,
              1e-9 * (1.0 + std::abs(scratch.latency_sum)));
  EXPECT_NEAR(objective_value(state.overlay(), s.ranks, w), state.value(),
              1e-9 * (1.0 + std::abs(state.value())));
}

TEST(IncrementalObjective, RevertRestoresExactState) {
  AnnealFixture s = make_setup();
  const ObjectiveWeights w;
  IncrementalObjective state(s.tree, s.ranks, w);
  const auto before_dist = state.latencies();
  const ObjectiveComponents before = state.components();

  // One recorded multi-op move: drop two edges, add one back.
  MoveDelta delta;
  state.begin_move();
  net::NodeId parent = 0;
  for (net::NodeId v = 0; v < state.overlay().node_count(); ++v) {
    if (state.overlay().successors(v).size() >= 2) {
      parent = v;
      break;
    }
  }
  const net::NodeId c0 = state.overlay().successors(parent)[0];
  const net::NodeId c1 = state.overlay().successors(parent)[1];
  const double lat = state.overlay().link_latency(parent, c0);
  ASSERT_TRUE(state.remove_link(parent, c0, &delta));
  ASSERT_TRUE(state.remove_link(parent, c1, &delta));
  ASSERT_TRUE(state.add_link(parent, c0, lat, &delta));
  const ComponentDelta d = state.take_move_delta();
  EXPECT_EQ(d.d_edges, -1);

  state.revert(delta);
  EXPECT_EQ(before.edges, state.components().edges);
  EXPECT_EQ(before.unreachable, state.components().unreachable);
  EXPECT_EQ(before.connectivity_deficit,
            state.components().connectivity_deficit);
  const auto& after_dist = state.latencies();
  for (std::size_t v = 0; v < before_dist.size(); ++v) {
    EXPECT_DOUBLE_EQ(before_dist[v], after_dist[v]) << "node " << v;
  }
  EXPECT_TRUE(state.overlay().has_link(parent, c0));
  EXPECT_TRUE(state.overlay().has_link(parent, c1));
}

TEST(GenerateNeighbor, PreservesValidity) {
  AnnealFixture s = make_setup();
  Rng rng(3);
  const AnnealingParams params = fast_params();
  Overlay current = s.tree;
  for (int i = 0; i < 30; ++i) {
    current = generate_neighbor(current, s.topo.graph, s.ranks, params, rng);
    const auto errors = current.validate();
    ASSERT_TRUE(errors.empty()) << "iteration " << i << ": " << errors[0];
  }
}

TEST(GenerateNeighbor, SharedCacheMatchesPerCallCache) {
  // The LinkCostCache overload must behave identically to the convenience
  // overload that rebuilds the cache internally (cost rows are pure
  // functions of the physical graph).
  AnnealFixture s = make_setup();
  const AnnealingParams params = fast_params();
  LinkCostCache costs(s.topo.graph);
  Rng r1(3), r2(3);
  Overlay a = s.tree;
  Overlay b = s.tree;
  for (int i = 0; i < 20; ++i) {
    a = generate_neighbor(a, s.topo.graph, s.ranks, params, r1);
    b = generate_neighbor(b, s.ranks, params, costs, r2);
    for (net::NodeId v = 0; v < a.node_count(); ++v) {
      ASSERT_EQ(a.successors(v), b.successors(v)) << "iteration " << i;
    }
    ASSERT_TRUE(b.is_valid());
  }
}

TEST(Anneal, NeverWorseThanInitial) {
  AnnealFixture s = make_setup();
  Rng rng(4);
  const AnnealingParams params = fast_params();
  const double initial = objective_value(s.tree, s.ranks, params.weights);
  const Overlay optimized = anneal(s.tree, s.topo.graph, s.ranks, params, rng);
  EXPECT_LE(objective_value(optimized, s.ranks, params.weights), initial);
}

TEST(Anneal, ResultIsValid) {
  AnnealFixture s = make_setup(60, 2);
  Rng rng(5);
  const Overlay optimized =
      anneal(s.tree, s.topo.graph, s.ranks, fast_params(), rng);
  const auto errors = optimized.validate();
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
}

TEST(Anneal, PrunesEdgesFromDenseBicliqueTree) {
  // On a complete physical graph the robust tree is built from full
  // bicliques between layers; annealing should prune a meaningful share of
  // those redundant links while keeping the structure valid. (On sparse
  // graphs the repair step may legitimately *add* edges to reach f+1
  // successors, so this property is specific to dense initial trees.)
  net::Graph g(30);
  for (net::NodeId a = 0; a < 30; ++a) {
    for (net::NodeId b = a + 1; b < 30; ++b) {
      g.add_edge(a, b, 1.0 + (a * 7 + b) % 13);
    }
  }
  RobustTreeParams tree_params;
  tree_params.f = 1;
  RankTable build_ranks(30, 0.0);
  const Overlay tree = build_robust_tree(g, tree_params, build_ranks);
  Rng rng(6);
  AnnealingParams params = fast_params();
  params.initial_temperature = 20.0;
  params.moves_per_temperature = 10;
  const RankTable ranks(30, 0.0);
  const Overlay optimized = anneal(tree, g, ranks, params, rng);
  EXPECT_LT(optimized.edge_count(), tree.edge_count());
  EXPECT_TRUE(optimized.is_valid());
}

TEST(Anneal, GreedyNeighborFilterMode) {
  AnnealFixture s = make_setup();
  Rng rng(7);
  AnnealingParams params = fast_params();
  params.greedy_neighbor_filter = true;
  const double initial = objective_value(s.tree, s.ranks, params.weights);
  const Overlay optimized = anneal(s.tree, s.topo.graph, s.ranks, params, rng);
  EXPECT_LE(objective_value(optimized, s.ranks, params.weights), initial);
  EXPECT_TRUE(optimized.is_valid());
}

TEST(Anneal, BitIdenticalAcrossWorkerCounts) {
  // Candidate Rng streams are forked per candidate index and acceptance
  // sweeps candidates in order, so the worker count only changes how the
  // batch is scheduled — never the result.
  AnnealFixture s = make_setup(60, 1);
  AnnealingParams params = fast_params();
  params.batch_size = 4;

  std::vector<Overlay> results;
  for (std::size_t workers : {1u, 2u, 4u}) {
    params.workers = workers;
    Rng rng(11);
    results.push_back(anneal(s.tree, s.topo.graph, s.ranks, params, rng));
  }
  for (std::size_t w = 1; w < results.size(); ++w) {
    ASSERT_EQ(results[0].edge_count(), results[w].edge_count());
    ASSERT_EQ(results[0].entry_points(), results[w].entry_points());
    for (net::NodeId v = 0; v < results[0].node_count(); ++v) {
      ASSERT_EQ(results[0].successors(v), results[w].successors(v))
          << "node " << v << " differs between 1 and " << (w == 1 ? 2 : 4)
          << " workers";
      for (net::NodeId c : results[0].successors(v)) {
        ASSERT_EQ(results[0].link_latency(v, c), results[w].link_latency(v, c));
      }
    }
  }
}

TEST(Anneal, SharedPoolAndCacheMatchOwnedOnes) {
  // build_overlay_set hands anneal() a shared cache and pool; neither may
  // change the result vs. the self-contained overload.
  AnnealFixture s = make_setup();
  AnnealingParams params = fast_params();
  params.batch_size = 3;
  params.workers = 2;
  Rng r1(13), r2(13);
  const Overlay own = anneal(s.tree, s.topo.graph, s.ranks, params, r1);
  LinkCostCache costs(s.topo.graph);
  ThreadPool pool(3);
  const Overlay shared = anneal(s.tree, s.ranks, params, r2, costs, &pool);
  ASSERT_EQ(own.edge_count(), shared.edge_count());
  for (net::NodeId v = 0; v < own.node_count(); ++v) {
    ASSERT_EQ(own.successors(v), shared.successors(v));
  }
}

TEST(Anneal, DeterministicGivenSeed) {
  AnnealFixture s = make_setup();
  Rng r1(9), r2(9);
  const AnnealingParams params = fast_params();
  const Overlay a = anneal(s.tree, s.topo.graph, s.ranks, params, r1);
  const Overlay b = anneal(s.tree, s.topo.graph, s.ranks, params, r2);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (net::NodeId v = 0; v < a.node_count(); ++v) {
    ASSERT_EQ(a.successors(v), b.successors(v));
  }
}

TEST(Builder, BuildsKValidOptimizedOverlays) {
  net::TopologyParams tparams;
  tparams.node_count = 50;
  tparams.min_degree = 5;
  Rng trng(22);
  const net::Topology topo = net::make_topology(tparams, trng);

  BuilderParams params;
  params.f = 1;
  params.k = 4;
  params.annealing = fast_params();
  Rng rng(23);
  const OverlaySet set = build_overlay_set(topo.graph, params, rng);
  ASSERT_EQ(set.overlays.size(), 4u);
  for (const Overlay& o : set.overlays) {
    const auto errors = o.validate();
    EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  }
  // Final ranks equal the accumulated root-proximity across overlays.
  for (net::NodeId v = 0; v < 50; ++v) {
    double expected = 0.0;
    for (const Overlay& o : set.overlays) {
      expected += static_cast<double>(o.max_depth()) -
                  static_cast<double>(o.depth(v)) + 1.0;
    }
    EXPECT_DOUBLE_EQ(set.final_ranks[v], expected);
  }
}

TEST(Builder, UnoptimizedModeSkipsAnnealing) {
  net::TopologyParams tparams;
  tparams.node_count = 40;
  Rng trng(24);
  const net::Topology topo = net::make_topology(tparams, trng);
  BuilderParams params;
  params.f = 1;
  params.k = 2;
  params.optimize = false;
  Rng rng(25);
  const OverlaySet set = build_overlay_set(topo.graph, params, rng);
  for (const Overlay& o : set.overlays) EXPECT_TRUE(o.is_valid());
}

}  // namespace
}  // namespace hermes::overlay
