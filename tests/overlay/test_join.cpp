// Incremental join placement and warm-started rebuild properties (the
// churn-resilience layer's overlay half): attachments restore full
// validity, the canonical ascending-id application order makes commuting
// join arrivals converge byte-identically, incremental placements stay
// near the annealed optimum, warm-started re-anneals beat scratch builds
// under the same move budget, and join/leave interleavings never break
// survives-removal.
#include "overlay/join.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/topology.hpp"
#include "overlay/builder.hpp"
#include "overlay/encoding.hpp"
#include "overlay/repair.hpp"
#include "overlay/robust_tree.hpp"

namespace hermes::overlay {
namespace {

struct JoinFixture {
  net::Topology topo;
  Overlay tree;
};

JoinFixture make_fixture(std::size_t n = 50, std::size_t f = 1,
                         std::uint64_t seed = 2024) {
  net::TopologyParams tp;
  tp.node_count = n;
  tp.min_degree = 5;
  Rng rng(seed);
  JoinFixture fx{net::make_topology(tp, rng), Overlay{}};
  RobustTreeParams params;
  params.f = f;
  RankTable ranks(n, 0.0);
  fx.tree = build_robust_tree(fx.topo.graph, params, ranks);
  return fx;
}

// A non-entry node at depth >= 2 whose local repair succeeds (the detach
// half of a churn cycle).
NodeId detachable_node(const JoinFixture& fx, NodeId from = 0) {
  for (NodeId v = from; v < fx.tree.node_count(); ++v) {
    if (!fx.tree.is_entry(v) && fx.tree.depth(v) >= 2) return v;
  }
  return net::NodeId(-1);
}

TEST(JoinPlacement, AttachRestoresFullValidity) {
  JoinFixture fx = make_fixture();
  const NodeId joiner = detachable_node(fx);
  ASSERT_NE(joiner, net::NodeId(-1));
  ASSERT_TRUE(remove_node_locally(fx.tree, joiner, fx.topo.graph).ok);
  ASSERT_EQ(fx.tree.depth(joiner), 0u);

  const RankTable zero_ranks(fx.tree.node_count(), 0.0);
  const ObjectiveWeights weights;
  const double before = objective_components(fx.tree, zero_ranks)
                            .value(fx.tree.node_count(), weights);
  const auto result = attach_node_locally(fx.tree, joiner, fx.topo.graph);
  ASSERT_TRUE(result.ok);
  EXPECT_GE(result.depth, 2u);  // joins never enter the entry layer
  EXPECT_EQ(result.links_added, fx.tree.f() + 1);
  // The reported delta is the exact Eq.-(1) change (typically negative:
  // re-attaching clears the joiner's unreachable penalty).
  const double after = objective_components(fx.tree, zero_ranks)
                           .value(fx.tree.node_count(), weights);
  EXPECT_NEAR(result.objective_delta, after - before, 1e-9);

  // Full validity: every node placed, f+1 predecessors, shallower->deeper.
  const auto errors = fx.tree.validate();
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  EXPECT_EQ(fx.tree.predecessors(joiner).size(), fx.tree.f() + 1);
  for (NodeId p : fx.tree.predecessors(joiner)) {
    EXPECT_LT(fx.tree.depth(p), fx.tree.depth(joiner));
  }
}

TEST(JoinPlacement, AttachIsAPureFunctionOfTheBaseTree) {
  JoinFixture fx = make_fixture(60, 1, 7);
  const NodeId joiner = detachable_node(fx);
  ASSERT_NE(joiner, net::NodeId(-1));
  ASSERT_TRUE(remove_node_locally(fx.tree, joiner, fx.topo.graph).ok);

  Overlay a = fx.tree;
  Overlay b = fx.tree;
  // One replica resolves link costs through the shared cache, the other
  // through per-call Dijkstra rows: the placement must not depend on it.
  const LinkCostCache costs(fx.topo.graph);
  ASSERT_TRUE(attach_node_locally(a, joiner, fx.topo.graph, true, &costs).ok);
  ASSERT_TRUE(attach_node_locally(b, joiner, fx.topo.graph).ok);
  EXPECT_EQ(encode_overlay(a), encode_overlay(b));
}

// The admission layer applies joins in canonical ascending-id order
// regardless of arrival order (HermesNode::rebuild_repairs). Replicas that
// learned the same join set in different orders therefore converge on
// byte-identical trees.
TEST(JoinPlacement, CommutingJoinOrdersConvergeByteIdentically) {
  JoinFixture fx = make_fixture(60, 1, 11);
  const NodeId a = detachable_node(fx);
  const NodeId b = detachable_node(fx, a + 1);
  ASSERT_NE(a, net::NodeId(-1));
  ASSERT_NE(b, net::NodeId(-1));
  ASSERT_TRUE(remove_node_locally(fx.tree, a, fx.topo.graph).ok);
  ASSERT_TRUE(remove_node_locally(fx.tree, b, fx.topo.graph).ok);

  const auto canonical_apply = [&](std::vector<NodeId> joins) {
    Overlay o = fx.tree;  // same pristine base on every replica
    std::sort(joins.begin(), joins.end());
    for (NodeId j : joins) {
      EXPECT_TRUE(attach_node_locally(o, j, fx.topo.graph).ok);
    }
    return encode_overlay(o);
  };
  // Replica 1 heard (a, b), replica 2 heard (b, a).
  EXPECT_EQ(canonical_apply({a, b}), canonical_apply({b, a}));
}

// Quality bound: re-attaching a churned node incrementally must keep the
// objective within a tight factor of the annealed tree it started from —
// the O(degree) local placement is a stand-in for a full re-anneal, not a
// degradation.
TEST(JoinPlacement, IncrementalPlacementStaysNearAnnealedObjective) {
  JoinFixture fx = make_fixture(50, 1, 13);
  AnnealingParams ap;
  ap.initial_temperature = 5.0;
  ap.min_temperature = 0.5;
  ap.cooling_rate = 0.8;
  ap.moves_per_temperature = 8;
  Rng rng(99);
  Overlay annealed =
      anneal(fx.tree, fx.topo.graph, RankTable(fx.tree.node_count(), 0.0), ap,
             rng);
  const RankTable ranks(annealed.node_count(), 0.0);
  const double v_annealed = objective_value(annealed, ranks, ap.weights);

  const NodeId joiner = [&] {
    for (NodeId v = 0; v < annealed.node_count(); ++v) {
      if (!annealed.is_entry(v) && annealed.depth(v) >= 2) return v;
    }
    return net::NodeId(-1);
  }();
  ASSERT_NE(joiner, net::NodeId(-1));
  ASSERT_TRUE(remove_node_locally(annealed, joiner, fx.topo.graph).ok);
  const auto result = attach_node_locally(annealed, joiner, fx.topo.graph,
                                          true, nullptr, ap.weights);
  ASSERT_TRUE(result.ok);
  const double v_incremental = objective_value(annealed, ranks, ap.weights);
  EXPECT_LT(v_incremental, v_annealed * 1.15)
      << "incremental " << v_incremental << " vs annealed " << v_annealed;
}

BuilderParams small_builder(std::size_t f = 1, std::size_t k = 3) {
  BuilderParams p;
  p.f = f;
  p.k = k;
  p.annealing.initial_temperature = 5.0;
  p.annealing.min_temperature = 1.0;
  p.annealing.cooling_rate = 0.8;
  p.annealing.moves_per_temperature = 4;
  return p;
}

double set_objective(const OverlaySet& set, const BuilderParams& p) {
  const RankTable zero(set.overlays.front().node_count(), 0.0);
  double total = 0.0;
  for (const Overlay& o : set.overlays) {
    total += objective_value(o, zero, p.annealing.weights);
  }
  return total;
}

// Warm-start quality: seeding the re-anneal from the previous epoch's
// trees (with churned nodes surgically moved) must match or beat a scratch
// rebuild under the identical move budget.
TEST(WarmRebuild, WarmStartMatchesOrBeatsScratchUnderFixedBudget) {
  net::TopologyParams tp;
  tp.node_count = 40;
  tp.min_degree = 5;
  Rng trng(31);
  const net::Topology topo = net::make_topology(tp, trng);
  const BuilderParams params = small_builder();

  Rng r0(1);
  const OverlaySet previous = build_overlay_set(topo.graph, params, r0);

  std::vector<NodeId> churned;
  for (NodeId v = 0; v < topo.graph.node_count() && churned.size() < 2; ++v) {
    if (!previous.overlays.front().is_entry(v) &&
        previous.overlays.front().depth(v) >= 2) {
      churned.push_back(v);
    }
  }
  ASSERT_EQ(churned.size(), 2u);

  Rng r1(2);
  const OverlaySet warm =
      build_overlay_set_warm(topo.graph, params, previous, churned, r1);
  Rng r2(2);
  const OverlaySet scratch = build_overlay_set(topo.graph, params, r2);

  ASSERT_EQ(warm.overlays.size(), params.k);
  for (const Overlay& o : warm.overlays) {
    const auto errors = o.validate();
    EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  }
  // The warm seed starts from an already-annealed generation, so the same
  // (short) move budget must not end up worse than annealing a fresh
  // greedy tree. Small slack absorbs move-acceptance noise.
  EXPECT_LE(set_objective(warm, params), set_objective(scratch, params) * 1.02)
      << "warm start lost to scratch under an identical budget";
}

// Determinism: the warm rebuild is a pure function of its inputs, and the
// worker count of the annealing pool must not leak into the result.
TEST(WarmRebuild, BitIdenticalAcrossWorkerCounts) {
  net::TopologyParams tp;
  tp.node_count = 40;
  tp.min_degree = 5;
  Rng trng(31);
  const net::Topology topo = net::make_topology(tp, trng);
  BuilderParams params = small_builder();
  params.annealing.batch_size = 4;

  Rng r0(1);
  const OverlaySet previous = build_overlay_set(topo.graph, params, r0);
  std::vector<NodeId> churned;
  for (NodeId v = 0; v < topo.graph.node_count() && churned.size() < 3; ++v) {
    if (!previous.overlays.front().is_entry(v) &&
        previous.overlays.front().depth(v) >= 2) {
      churned.push_back(v);
    }
  }
  ASSERT_EQ(churned.size(), 3u);

  std::vector<Bytes> encodings;
  for (std::size_t workers : {1u, 2u, 4u}) {
    params.annealing.workers = workers;
    Rng r(7);
    const OverlaySet warm =
        build_overlay_set_warm(topo.graph, params, previous, churned, r);
    Bytes all;
    for (const Overlay& o : warm.overlays) {
      const Bytes enc = encode_overlay(o);
      all.insert(all.end(), enc.begin(), enc.end());
    }
    encodings.push_back(std::move(all));
  }
  EXPECT_EQ(encodings[0], encodings[1]);
  EXPECT_EQ(encodings[0], encodings[2]);
}

// Interleaved join/leave churn: at every step the tree (with currently
// departed nodes absent) keeps every survivor f+1-connected, and once all
// nodes are back it passes full validation plus survives-removal of any
// single node.
TEST(JoinPlacement, JoinLeaveInterleavingsPreserveSurvivesRemoval) {
  JoinFixture fx = make_fixture(60, 1, 17);
  std::vector<NodeId> out;  // currently departed, kept sorted
  Rng rng(5);
  for (int step = 0; step < 24; ++step) {
    const bool leave = out.empty() || (out.size() < 3 && rng.bernoulli(0.5));
    if (leave) {
      const NodeId v = [&]() -> NodeId {
        for (NodeId c = static_cast<NodeId>(rng.uniform_u64(60));;
             c = (c + 1) % 60) {
          if (fx.tree.is_entry(c) || fx.tree.depth(c) < 2) continue;
          if (std::find(out.begin(), out.end(), c) == out.end()) return c;
        }
      }();
      ASSERT_TRUE(remove_node_locally(fx.tree, v, fx.topo.graph).ok)
          << "step " << step;
      out.insert(std::upper_bound(out.begin(), out.end(), v), v);
    } else {
      const NodeId v = out.front();
      out.erase(out.begin());
      ASSERT_TRUE(attach_node_locally(fx.tree, v, fx.topo.graph).ok)
          << "step " << step;
    }
    const auto errors = validate_with_absent(fx.tree, out);
    ASSERT_TRUE(errors.empty())
        << "step " << step << ": " << errors[0];
  }
  while (!out.empty()) {
    const NodeId v = out.front();
    out.erase(out.begin());
    ASSERT_TRUE(attach_node_locally(fx.tree, v, fx.topo.graph).ok);
  }
  const auto errors = fx.tree.validate();
  ASSERT_TRUE(errors.empty()) << errors[0];
  for (NodeId v = 0; v < fx.tree.node_count(); ++v) {
    EXPECT_TRUE(survives_removal(fx.tree, std::vector<NodeId>{v})) << v;
  }
}

}  // namespace
}  // namespace hermes::overlay
