#include "overlay/robust_tree.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace hermes::overlay {
namespace {

net::Topology test_topology(std::size_t n, std::uint64_t seed = 42) {
  net::TopologyParams params;
  params.node_count = n;
  params.min_degree = 5;
  params.connectivity = 2;
  Rng rng(seed);
  return net::make_topology(params, rng);
}

TEST(RobustTree, ProducesValidOverlay) {
  const net::Topology topo = test_topology(60);
  RobustTreeParams params;
  params.f = 1;
  RankTable ranks(60, 0.0);
  const Overlay o = build_robust_tree(topo.graph, params, ranks);
  const auto errors = o.validate();
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
}

TEST(RobustTree, EveryNodePlacedAndRanked) {
  const net::Topology topo = test_topology(50);
  RobustTreeParams params;
  params.f = 1;
  RankTable ranks(50, 0.0);
  const Overlay o = build_robust_tree(topo.graph, params, ranks);
  const double max_depth = static_cast<double>(o.max_depth());
  for (net::NodeId v = 0; v < 50; ++v) {
    EXPECT_GE(o.depth(v), 1u);
    // Ranks accumulate root proximity: entries gain the most, leaves the
    // least (but always at least 1).
    EXPECT_DOUBLE_EQ(ranks[v],
                     max_depth - static_cast<double>(o.depth(v)) + 1.0);
    EXPECT_GE(ranks[v], 1.0);
  }
  for (net::NodeId e : o.entry_points()) {
    EXPECT_DOUBLE_EQ(ranks[e], max_depth);
  }
}

TEST(RobustTree, EntryPointsHaveLowestInitialRank) {
  const net::Topology topo = test_topology(40);
  RobustTreeParams params;
  params.f = 2;
  RankTable ranks(40, 0.0);
  // Pre-bias ranks so nodes 10..12 are clearly the least-used.
  for (net::NodeId v = 0; v < 40; ++v) ranks[v] = 5.0;
  ranks[10] = ranks[11] = ranks[12] = 0.0;
  const Overlay o = build_robust_tree(topo.graph, params, ranks);
  ASSERT_EQ(o.entry_points().size(), 3u);
  for (net::NodeId e : o.entry_points()) {
    EXPECT_TRUE(e == 10 || e == 11 || e == 12) << e;
  }
}

TEST(RobustTree, NonEntryNodesHaveFPlusOnePredecessors) {
  for (std::size_t f : {1u, 2u, 3u}) {
    const net::Topology topo = test_topology(70, 100 + f);
    RobustTreeParams params;
    params.f = f;
    RankTable ranks(70, 0.0);
    const Overlay o = build_robust_tree(topo.graph, params, ranks);
    for (net::NodeId v = 0; v < 70; ++v) {
      if (!o.is_entry(v)) {
        EXPECT_GE(o.predecessors(v).size(), f + 1) << "f=" << f << " v=" << v;
      }
    }
  }
}

TEST(RobustTree, DeterministicGivenSameInputs) {
  const net::Topology topo = test_topology(45);
  RobustTreeParams params;
  params.f = 1;
  RankTable r1(45, 0.0), r2(45, 0.0);
  const Overlay a = build_robust_tree(topo.graph, params, r1);
  const Overlay b = build_robust_tree(topo.graph, params, r2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (net::NodeId v = 0; v < 45; ++v) {
    ASSERT_EQ(a.depth(v), b.depth(v));
    ASSERT_EQ(a.successors(v), b.successors(v));
  }
}

TEST(RobustTree, RankAccumulationRotatesEntryPoints) {
  const net::Topology topo = test_topology(60);
  RobustTreeParams params;
  params.f = 1;
  const auto trees = build_robust_trees(topo.graph, params, 5);
  ASSERT_EQ(trees.size(), 5u);
  // Entry points should not repeat wholesale across consecutive trees: the
  // rank update pushes previous entries away from the root.
  for (std::size_t i = 0; i + 1 < trees.size(); ++i) {
    const auto& a = trees[i].entry_points();
    const auto& b = trees[i + 1].entry_points();
    std::size_t common = 0;
    for (net::NodeId e : a) {
      common += std::count(b.begin(), b.end(), e);
    }
    EXPECT_LT(common, a.size()) << "trees " << i << " and " << i + 1
                                << " share all entry points";
  }
}

TEST(RobustTree, LayerBudgetRespected) {
  const net::Topology topo = test_topology(80);
  RobustTreeParams params;
  params.f = 1;
  RankTable ranks(80, 0.0);
  const Overlay o = build_robust_tree(topo.graph, params, ranks);
  const auto layers = o.layers();
  // Depth-d layers built by the doubling phase hold at most 2^(d-1)*(f+1)
  // nodes. Missing-node integration can exceed this only at depths below
  // the doubling frontier, so check the first two layers which are always
  // doubling-phase layers.
  ASSERT_GE(layers.size(), 2u);
  EXPECT_EQ(layers[1].size(), params.f + 1);
  if (layers.size() > 2) {
    EXPECT_LE(layers[2].size(), 2 * (params.f + 1));
  }
}

TEST(RobustTree, RequiresEnoughNodes) {
  net::Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  RobustTreeParams params;
  params.f = 2;  // needs >= 4 nodes
  RankTable ranks(3, 0.0);
  EXPECT_DEATH(build_robust_tree(g, params, ranks), "");
}

TEST(RobustTree, WorksOnDenseGraph) {
  // Complete graph: the doubling phase should absorb everything.
  net::Graph g(30);
  for (net::NodeId a = 0; a < 30; ++a) {
    for (net::NodeId b = a + 1; b < 30; ++b) {
      g.add_edge(a, b, 1.0 + (a + b) % 7);
    }
  }
  RobustTreeParams params;
  params.f = 1;
  RankTable ranks(30, 0.0);
  const Overlay o = build_robust_tree(g, params, ranks);
  EXPECT_TRUE(o.is_valid());
  // Dense graph, doubling pattern: depth stays logarithmic-ish.
  EXPECT_LE(o.max_depth(), 6u);
}

}  // namespace
}  // namespace hermes::overlay
