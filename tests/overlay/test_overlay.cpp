#include "overlay/overlay.hpp"

#include <gtest/gtest.h>

namespace hermes::overlay {
namespace {

// Small hand-built overlay: f = 1, entries {0, 1}, second layer {2, 3},
// leaf {4}; every non-entry node has 2 predecessors.
Overlay tiny_overlay() {
  Overlay o(5, 1);
  o.add_entry_point(0);
  o.add_entry_point(1);
  o.set_depth(2, 2);
  o.set_depth(3, 2);
  o.set_depth(4, 3);
  o.add_link(0, 2, 1.0);
  o.add_link(1, 2, 2.0);
  o.add_link(0, 3, 3.0);
  o.add_link(1, 3, 1.0);
  o.add_link(2, 4, 1.0);
  o.add_link(3, 4, 1.0);
  return o;
}

TEST(Overlay, BasicAccessors) {
  const Overlay o = tiny_overlay();
  EXPECT_EQ(o.node_count(), 5u);
  EXPECT_EQ(o.f(), 1u);
  EXPECT_EQ(o.edge_count(), 6u);
  EXPECT_EQ(o.max_depth(), 3u);
  EXPECT_TRUE(o.is_entry(0));
  EXPECT_FALSE(o.is_entry(2));
  EXPECT_EQ(o.entry_points().size(), 2u);
}

TEST(Overlay, LinkBookkeeping) {
  Overlay o = tiny_overlay();
  EXPECT_TRUE(o.has_link(0, 2));
  EXPECT_FALSE(o.has_link(2, 0));
  EXPECT_DOUBLE_EQ(o.link_latency(0, 2), 1.0);
  EXPECT_EQ(o.successors(0).size(), 2u);
  EXPECT_EQ(o.predecessors(4).size(), 2u);
  o.remove_link(0, 2);
  EXPECT_FALSE(o.has_link(0, 2));
  EXPECT_EQ(o.successors(0).size(), 1u);
  EXPECT_EQ(o.predecessors(2).size(), 1u);
}

TEST(Overlay, AddLinkIdempotent) {
  Overlay o = tiny_overlay();
  o.add_link(0, 2, 9.0);
  EXPECT_EQ(o.edge_count(), 6u);
  EXPECT_DOUBLE_EQ(o.link_latency(0, 2), 1.0);
}

TEST(Overlay, DisseminationLatencies) {
  const Overlay o = tiny_overlay();
  const auto dist = o.dissemination_latencies();
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 0.0);
  EXPECT_DOUBLE_EQ(dist[2], 1.0);  // via entry 0
  EXPECT_DOUBLE_EQ(dist[3], 1.0);  // via entry 1
  EXPECT_DOUBLE_EQ(dist[4], 2.0);
}

TEST(Overlay, ValidOverlayPassesValidation) {
  EXPECT_TRUE(tiny_overlay().is_valid());
}

TEST(Overlay, ValidationCatchesMissingPredecessors) {
  Overlay o = tiny_overlay();
  o.remove_link(1, 2);
  const auto errors = o.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("predecessors"), std::string::npos);
}

TEST(Overlay, ValidationCatchesUnplacedNode) {
  Overlay o(3, 0);
  o.add_entry_point(0);
  o.set_depth(1, 2);
  o.add_link(0, 1, 1.0);
  const auto errors = o.validate();
  bool found = false;
  for (const auto& e : errors) {
    found |= e.find("not placed") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Overlay, ValidationCatchesWrongEntryCount) {
  Overlay o(3, 1);  // f = 1 expects 2 entries
  o.add_entry_point(0);
  o.set_depth(1, 2);
  o.set_depth(2, 2);
  o.add_link(0, 1, 1.0);
  o.add_link(0, 2, 1.0);
  const auto errors = o.validate();
  bool found = false;
  for (const auto& e : errors) {
    found |= e.find("entry points") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Overlay, ValidationCatchesUnreachable) {
  Overlay o(4, 0);
  o.add_entry_point(0);
  o.set_depth(1, 2);
  o.set_depth(2, 2);
  o.set_depth(3, 3);
  o.add_link(0, 1, 1.0);
  o.add_link(0, 2, 1.0);
  // Node 3 placed but no incoming link.
  const auto errors = o.validate();
  bool unreachable = false;
  for (const auto& e : errors) {
    unreachable |= e.find("unreachable") != std::string::npos;
  }
  EXPECT_TRUE(unreachable);
}

TEST(Overlay, LayersGroupByDepth) {
  const Overlay o = tiny_overlay();
  const auto layers = o.layers();
  ASSERT_EQ(layers.size(), 4u);
  EXPECT_TRUE(layers[0].empty());
  EXPECT_EQ(layers[1].size(), 2u);
  EXPECT_EQ(layers[2].size(), 2u);
  EXPECT_EQ(layers[3].size(), 1u);
}

}  // namespace
}  // namespace hermes::overlay
