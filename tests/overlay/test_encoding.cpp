#include "overlay/encoding.hpp"

#include <gtest/gtest.h>

#include "crypto/sim_signer.hpp"
#include "net/topology.hpp"
#include "overlay/robust_tree.hpp"

namespace hermes::overlay {
namespace {

Overlay test_overlay(std::size_t n = 40, std::size_t f = 1) {
  net::TopologyParams params;
  params.node_count = n;
  params.min_degree = 4;
  Rng trng(55);
  const net::Topology topo = net::make_topology(params, trng);
  RobustTreeParams tree_params;
  tree_params.f = f;
  RankTable ranks(n, 0.0);
  return build_robust_tree(topo.graph, tree_params, ranks);
}

TEST(Encoding, RoundTripPreservesStructure) {
  const Overlay o = test_overlay();
  const auto decoded = decode_overlay(encode_overlay(o));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->node_count(), o.node_count());
  EXPECT_EQ(decoded->f(), o.f());
  EXPECT_EQ(decoded->entry_points(), o.entry_points());
  EXPECT_EQ(decoded->edge_count(), o.edge_count());
  for (net::NodeId v = 0; v < o.node_count(); ++v) {
    ASSERT_EQ(decoded->depth(v), o.depth(v));
    auto a = o.successors(v);
    auto b = decoded->successors(v);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
  EXPECT_TRUE(decoded->is_valid());
}

TEST(Encoding, LatenciesSurviveQuantized) {
  const Overlay o = test_overlay();
  const auto decoded = decode_overlay(encode_overlay(o));
  ASSERT_TRUE(decoded.has_value());
  for (net::NodeId v = 0; v < o.node_count(); ++v) {
    for (net::NodeId c : o.successors(v)) {
      EXPECT_NEAR(decoded->link_latency(v, c), o.link_latency(v, c), 0.01);
    }
  }
}

TEST(Encoding, CompactSize) {
  const Overlay o = test_overlay(100);
  const auto encoded = encode_overlay(o);
  // A few bytes per edge plus per-node overhead; far below a naive
  // adjacency matrix (100x100).
  EXPECT_LT(encoded.size(), o.edge_count() * 8 + o.node_count() * 4 + 64);
}

TEST(Encoding, RejectsBadMagic) {
  auto enc = encode_overlay(test_overlay());
  enc[0] ^= 0xff;
  EXPECT_FALSE(decode_overlay(enc).has_value());
}

TEST(Encoding, RejectsTruncation) {
  const auto enc = encode_overlay(test_overlay());
  for (std::size_t cut : {enc.size() - 1, enc.size() / 2, std::size_t{5}}) {
    EXPECT_FALSE(
        decode_overlay(hermes::BytesView(enc.data(), cut)).has_value())
        << "cut=" << cut;
  }
}

TEST(Encoding, RejectsTrailingGarbage) {
  auto enc = encode_overlay(test_overlay());
  enc.push_back(0);
  EXPECT_FALSE(decode_overlay(enc).has_value());
}

TEST(Encoding, CertifyAndVerify) {
  const Overlay o = test_overlay();
  const crypto::SimThresholdScheme scheme(hermes::to_bytes("committee"), 4, 3);
  const auto cert = certify_overlay(o, scheme);
  ASSERT_TRUE(cert.has_value());
  Overlay decoded;
  EXPECT_TRUE(verify_certified_overlay(*cert, scheme, &decoded));
  EXPECT_EQ(decoded.node_count(), o.node_count());
}

TEST(Encoding, VerifyRejectsTamperedEncoding) {
  const Overlay o = test_overlay();
  const crypto::SimThresholdScheme scheme(hermes::to_bytes("committee"), 4, 3);
  auto cert = certify_overlay(o, scheme);
  ASSERT_TRUE(cert.has_value());
  cert->encoded[10] ^= 1;
  EXPECT_FALSE(verify_certified_overlay(*cert, scheme));
}

TEST(Encoding, VerifyRejectsWrongCommittee) {
  const Overlay o = test_overlay();
  const crypto::SimThresholdScheme scheme(hermes::to_bytes("committee"), 4, 3);
  const crypto::SimThresholdScheme other(hermes::to_bytes("imposter"), 4, 3);
  const auto cert = certify_overlay(o, scheme);
  ASSERT_TRUE(cert.has_value());
  EXPECT_FALSE(verify_certified_overlay(*cert, other));
}

TEST(Encoding, VerifyRejectsStructurallyInvalidButSignedOverlay) {
  // A committee bug (or collusion) signing a malformed overlay must still
  // be caught by the structural validation on install.
  Overlay broken(5, 1);
  broken.add_entry_point(0);
  broken.add_entry_point(1);
  broken.set_depth(2, 2);
  broken.set_depth(3, 2);
  broken.set_depth(4, 3);
  broken.add_link(0, 2, 1.0);  // node 2 has only one predecessor
  broken.add_link(0, 3, 1.0);
  broken.add_link(1, 3, 1.0);
  broken.add_link(2, 4, 1.0);
  broken.add_link(3, 4, 1.0);
  const crypto::SimThresholdScheme scheme(hermes::to_bytes("committee"), 4, 3);
  const auto cert = certify_overlay(broken, scheme);
  ASSERT_TRUE(cert.has_value());
  EXPECT_FALSE(verify_certified_overlay(*cert, scheme));
}

}  // namespace
}  // namespace hermes::overlay
