// Parameterized property sweeps over the overlay pipeline: for every
// (n, f, k) combination, the invariants of Section V must hold end to end —
// construction, annealing, encoding, certification.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>
#include <vector>

#include "crypto/sim_signer.hpp"
#include "net/topology.hpp"
#include "overlay/builder.hpp"
#include "overlay/overlay.hpp"
#include "overlay/encoding.hpp"
#include "overlay/roles.hpp"

namespace hermes::overlay {
namespace {

using Params = std::tuple<std::size_t /*n*/, std::size_t /*f*/, std::size_t /*k*/>;

constexpr Params P(std::size_t n, std::size_t f, std::size_t k) {
  return Params{n, f, k};
}

class OverlayPipelineProperty : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    const auto [n, f, k] = GetParam();
    net::TopologyParams tp;
    tp.node_count = n;
    tp.min_degree = std::max<std::size_t>(f + 2, 5);
    tp.connectivity = 2;
    Rng trng(1000 + n * 7 + f * 3 + k);
    topo_ = net::make_topology(tp, trng);

    BuilderParams params;
    params.f = f;
    params.k = k;
    params.annealing.initial_temperature = 5.0;
    params.annealing.min_temperature = 1.0;
    params.annealing.cooling_rate = 0.8;
    params.annealing.moves_per_temperature = 4;
    Rng rng(2000 + n + f + k);
    set_ = build_overlay_set(topo_.graph, params, rng);
  }

  net::Topology topo_;
  OverlaySet set_;
};

TEST_P(OverlayPipelineProperty, AllOverlaysStructurallyValid) {
  const auto [n, f, k] = GetParam();
  ASSERT_EQ(set_.overlays.size(), k);
  for (const Overlay& o : set_.overlays) {
    const auto errors = o.validate();
    EXPECT_TRUE(errors.empty())
        << "n=" << n << " f=" << f << " k=" << k << ": " << errors[0];
  }
}

TEST_P(OverlayPipelineProperty, EntryPointsAndPredecessorCounts) {
  const auto [n, f, k] = GetParam();
  (void)n;
  (void)k;
  for (const Overlay& o : set_.overlays) {
    EXPECT_EQ(o.entry_points().size(), f + 1);
    for (net::NodeId v = 0; v < o.node_count(); ++v) {
      if (!o.is_entry(v)) {
        EXPECT_GE(o.predecessors(v).size(), f + 1);
      }
    }
  }
}

TEST_P(OverlayPipelineProperty, EveryNodeReachableWithFiniteLatency) {
  for (const Overlay& o : set_.overlays) {
    const auto dist = o.dissemination_latencies();
    for (double d : dist) {
      EXPECT_NE(d, net::kInfLatency);
      EXPECT_GE(d, 0.0);
    }
  }
}

// Section V's resilience claim, checked exhaustively: removing ANY set of
// f nodes leaves every surviving node reachable from a surviving entry
// point (f+1 entry points plus >= f+1 predecessors per interior node).
TEST_P(OverlayPipelineProperty, SurvivesAnyFNodeRemovals) {
  const auto [n, f, k] = GetParam();
  (void)k;
  std::vector<net::NodeId> subset(f);
  for (const Overlay& o : set_.overlays) {
    // Enumerate all f-subsets of [0, n) with an odometer over sorted ids.
    std::size_t checked = 0;
    const std::function<bool(std::size_t, net::NodeId)> walk =
        [&](std::size_t depth, net::NodeId first) -> bool {
      if (depth == f) {
        ++checked;
        if (!survives_removal(o, subset)) {
          ADD_FAILURE() << "n=" << n << " f=" << f
                        << ": overlay disconnected by removing node set #"
                        << checked;
          return false;
        }
        return true;
      }
      for (net::NodeId v = first; v < n; ++v) {
        subset[depth] = v;
        if (!walk(depth + 1, v + 1)) return false;
      }
      return true;
    };
    walk(0, 0);
    EXPECT_GT(checked, 0u);
  }
}

TEST_P(OverlayPipelineProperty, EncodingRoundTripsAndCertifies) {
  const auto [n, f, k] = GetParam();
  (void)n;
  (void)k;
  const crypto::SimThresholdScheme scheme(to_bytes("sweep-committee"),
                                          3 * f + 1, 2 * f + 1);
  for (const Overlay& o : set_.overlays) {
    const auto cert = certify_overlay(o, scheme);
    ASSERT_TRUE(cert.has_value());
    Overlay decoded;
    ASSERT_TRUE(verify_certified_overlay(*cert, scheme, &decoded));
    EXPECT_EQ(decoded.edge_count(), o.edge_count());
    EXPECT_EQ(decoded.entry_points(), o.entry_points());
  }
}

TEST_P(OverlayPipelineProperty, RolesRotateAcrossOverlays) {
  const auto [n, f, k] = GetParam();
  if (k < 3) GTEST_SKIP() << "rotation needs several overlays";
  const auto fairness = fairness_metrics(set_.overlays);
  // No node may hold an entry slot in every overlay.
  EXPECT_LT(fairness.max_entry_appearances, k)
      << "n=" << n << " f=" << f << " k=" << k;
}

TEST_P(OverlayPipelineProperty, RanksArePositiveAndBounded) {
  const auto [n, f, k] = GetParam();
  for (net::NodeId v = 0; v < n; ++v) {
    EXPECT_GE(set_.final_ranks[v], static_cast<double>(k));  // >= 1 per tree
    // Upper bound: max depth contribution per tree is bounded by n.
    EXPECT_LE(set_.final_ranks[v], static_cast<double>(k * n));
  }
}

std::string grid_name(const ::testing::TestParamInfo<Params>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_f" +
         std::to_string(std::get<1>(info.param)) + "_k" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Grid, OverlayPipelineProperty,
                         ::testing::Values(P(30, 1, 2), P(30, 2, 3),
                                           P(50, 1, 4), P(50, 3, 3),
                                           P(80, 2, 5), P(120, 1, 6)),
                         grid_name);

}  // namespace
}  // namespace hermes::overlay
