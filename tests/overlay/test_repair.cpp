// Local overlay repair tests (the Section IX future-work direction).
#include "overlay/repair.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "overlay/robust_tree.hpp"

namespace hermes::overlay {
namespace {

struct RepairFixture {
  net::Topology topo;
  Overlay tree;
};

RepairFixture make_fixture(std::size_t n = 50, std::size_t f = 1,
                           std::uint64_t seed = 2024) {
  net::TopologyParams tp;
  tp.node_count = n;
  tp.min_degree = 5;
  Rng rng(seed);
  RepairFixture fx{net::make_topology(tp, rng), Overlay{}};
  RobustTreeParams params;
  params.f = f;
  RankTable ranks(n, 0.0);
  fx.tree = build_robust_tree(fx.topo.graph, params, ranks);
  return fx;
}

TEST(LocalRepair, LeafDepartureIsTrivial) {
  RepairFixture fx = make_fixture();
  // Find a leaf (no successors).
  NodeId leaf = net::NodeId(-1);
  for (NodeId v = 0; v < fx.tree.node_count(); ++v) {
    if (!fx.tree.is_entry(v) && fx.tree.successors(v).empty()) {
      leaf = v;
      break;
    }
  }
  ASSERT_NE(leaf, net::NodeId(-1));
  const auto result = remove_node_locally(fx.tree, leaf, fx.topo.graph);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.links_added, 0u);  // nobody depended on a leaf
  EXPECT_FALSE(result.promoted_entry);
  const std::vector<NodeId> absent{leaf};
  EXPECT_TRUE(validate_with_absent(fx.tree, absent).empty());
}

TEST(LocalRepair, MidTreeDepartureRepairsChildren) {
  RepairFixture fx = make_fixture();
  // Find an internal non-entry node with several children.
  NodeId internal = net::NodeId(-1);
  for (NodeId v = 0; v < fx.tree.node_count(); ++v) {
    if (!fx.tree.is_entry(v) && fx.tree.successors(v).size() >= 2) {
      internal = v;
      break;
    }
  }
  ASSERT_NE(internal, net::NodeId(-1));
  const auto result = remove_node_locally(fx.tree, internal, fx.topo.graph);
  ASSERT_TRUE(result.ok);
  const std::vector<NodeId> absent{internal};
  const auto errors = validate_with_absent(fx.tree, absent);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  // Every surviving non-entry node still has f+1 predecessors.
  for (NodeId v = 0; v < fx.tree.node_count(); ++v) {
    if (v == internal || fx.tree.is_entry(v)) continue;
    EXPECT_GE(fx.tree.predecessors(v).size(), 2u) << v;
  }
}

TEST(LocalRepair, EntryDeparturePromotesReplacement) {
  RepairFixture fx = make_fixture();
  const NodeId entry = fx.tree.entry_points()[0];
  const auto result = remove_node_locally(fx.tree, entry, fx.topo.graph);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.promoted_entry);
  EXPECT_EQ(fx.tree.entry_points().size(), 2u);  // f+1 restored
  EXPECT_FALSE(fx.tree.is_entry(entry));
  const std::vector<NodeId> absent{entry};
  const auto errors = validate_with_absent(fx.tree, absent);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
}

TEST(LocalRepair, SequentialChurnStaysValid) {
  RepairFixture fx = make_fixture(60, 1, 9);
  std::vector<NodeId> departed;
  Rng rng(1);
  for (int round = 0; round < 8; ++round) {
    // Pick any still-present node.
    NodeId victim;
    do {
      victim = static_cast<NodeId>(rng.uniform_u64(60));
    } while (std::find(departed.begin(), departed.end(), victim) !=
             departed.end());
    const auto result = remove_node_locally(fx.tree, victim, fx.topo.graph);
    if (!result.ok) continue;  // local repair may refuse; overlay unchanged
    departed.push_back(victim);
    const auto errors = validate_with_absent(fx.tree, departed);
    ASSERT_TRUE(errors.empty())
        << "round " << round << ": " << errors[0];
  }
  EXPECT_GE(departed.size(), 5u);  // most departures repairable locally
}

TEST(LocalRepair, SequentialDeparturesDownToMinimumPopulation) {
  // Harder sequential-churn property: keep removing random nodes until
  // only f+2 participants remain (entry layer + one dependent). After
  // every accepted repair the overlay must validate with the departed set
  // absent AND still tolerate the loss of any f of the survivors — the
  // paper's resilience bound must survive arbitrarily long repair chains,
  // not just the first few.
  constexpr std::size_t kN = 24;
  constexpr std::size_t kF = 1;
  RepairFixture fx = make_fixture(kN, kF, 31);
  Rng rng(7);
  std::vector<NodeId> departed;
  bool progress = true;
  while (progress && kN - departed.size() > kF + 2) {
    progress = false;
    std::vector<NodeId> remaining;
    for (NodeId v = 0; v < kN; ++v) {
      if (std::find(departed.begin(), departed.end(), v) == departed.end()) {
        remaining.push_back(v);
      }
    }
    rng.shuffle(remaining);
    for (NodeId victim : remaining) {
      const auto result = remove_node_locally(fx.tree, victim, fx.topo.graph);
      if (!result.ok) continue;  // refusal leaves the overlay untouched
      departed.push_back(victim);
      progress = true;
      const auto errors = validate_with_absent(fx.tree, departed);
      ASSERT_TRUE(errors.empty())
          << departed.size() << " departed: " << errors[0];
      // f-resilience of the repaired tree: losing any single survivor
      // must not disconnect anyone.
      std::vector<NodeId> absent = departed;
      absent.push_back(victim);  // placeholder, overwritten below
      for (NodeId extra : remaining) {
        if (extra == victim) continue;
        absent.back() = extra;
        ASSERT_TRUE(survives_removal(fx.tree, absent))
            << departed.size() << " departed; removing survivor " << extra
            << " disconnects the repaired tree";
      }
      break;  // re-randomize the victim order each round
    }
  }
  // Local repair must carry the overlay through at least half its
  // population before refusing (refusals hand over to a full rebuild).
  EXPECT_GE(departed.size(), kN / 2);
}

TEST(LocalRepair, TinyOverlaySucceedsByPromotion) {
  // Removing an entry from a 3-node overlay is repairable: the only child
  // is promoted into the entry set and nothing is left needing
  // predecessors.
  Overlay o(3, 1);
  o.add_entry_point(0);
  o.add_entry_point(1);
  o.set_depth(2, 2);
  o.add_link(0, 2, 1.0);
  o.add_link(1, 2, 1.0);
  net::Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 2, 1.0);
  ASSERT_TRUE(o.is_valid());
  const auto result = remove_node_locally(o, 0, g);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.promoted_entry);
  const std::vector<NodeId> absent{0};
  EXPECT_TRUE(validate_with_absent(o, absent).empty());
}

TEST(LocalRepair, FailureLeavesOverlayUntouched) {
  // Physical-links-only repair with no spare edges: entries {0,1},
  // children {2,3} each wired to both entries and to nothing else. After
  // entry 0 departs and one child is promoted, the other child cannot find
  // a second physical predecessor.
  Overlay o(4, 1);
  o.add_entry_point(0);
  o.add_entry_point(1);
  o.set_depth(2, 2);
  o.set_depth(3, 2);
  o.add_link(0, 2, 1.0);
  o.add_link(1, 2, 1.0);
  o.add_link(0, 3, 1.0);
  o.add_link(1, 3, 1.0);
  net::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(1, 3, 1.0);  // no 2-3 edge
  ASSERT_TRUE(o.is_valid());
  const Overlay before = o;
  const auto result = remove_node_locally(o, 0, g, /*allow_logical=*/false);
  EXPECT_FALSE(result.ok);
  // Unchanged on failure.
  EXPECT_EQ(o.edge_count(), before.edge_count());
  EXPECT_EQ(o.entry_points(), before.entry_points());
  EXPECT_TRUE(o.is_valid());
}

TEST(LocalRepair, CheaperThanRebuild) {
  // The point of the exercise: a local repair touches a handful of links.
  RepairFixture fx = make_fixture(80, 1, 13);
  const std::size_t edges = fx.tree.edge_count();
  NodeId internal = net::NodeId(-1);
  for (NodeId v = 0; v < fx.tree.node_count(); ++v) {
    if (!fx.tree.is_entry(v) && !fx.tree.successors(v).empty()) internal = v;
  }
  ASSERT_NE(internal, net::NodeId(-1));
  const auto result = remove_node_locally(fx.tree, internal, fx.topo.graph);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(result.links_added + result.links_removed, edges / 4);
}

}  // namespace
}  // namespace hermes::overlay
