#include "overlay/families.hpp"

#include <gtest/gtest.h>

#include "net/connectivity.hpp"
#include "overlay/robust_tree.hpp"

namespace hermes::overlay {
namespace {

net::Topology test_topology(std::size_t n = 48) {
  net::TopologyParams params;
  params.node_count = n;
  params.min_degree = 4;
  Rng rng(33);
  return net::make_topology(params, rng);
}

class FamilyConnectivityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FamilyConnectivityTest, ChordalRingIsFPlusOneConnected) {
  const std::size_t f = GetParam();
  const net::Topology topo = test_topology();
  Rng rng(1);
  const net::Graph g = make_chordal_ring(topo, f, rng);
  EXPECT_TRUE(net::is_k_vertex_connected(g, f + 1)) << "f=" << f;
}

TEST_P(FamilyConnectivityTest, HypercubeIsFPlusOneConnected) {
  const std::size_t f = GetParam();
  const net::Topology topo = test_topology();
  Rng rng(2);
  const net::Graph g = make_hypercube(topo, f, rng);
  EXPECT_TRUE(net::is_k_vertex_connected(g, f + 1)) << "f=" << f;
}

TEST_P(FamilyConnectivityTest, RandomOverlayIsFPlusOneConnected) {
  const std::size_t f = GetParam();
  const net::Topology topo = test_topology();
  Rng rng(3);
  const net::Graph g = make_random_connected(topo, f, rng);
  EXPECT_TRUE(net::is_k_vertex_connected(g, f + 1)) << "f=" << f;
}

TEST_P(FamilyConnectivityTest, KDiamondIsFPlusOneConnected) {
  const std::size_t f = GetParam();
  const net::Topology topo = test_topology();
  Rng rng(4);
  const net::Graph g = make_k_diamond(topo, f, rng);
  EXPECT_TRUE(net::is_k_vertex_connected(g, f + 1)) << "f=" << f;
}

TEST_P(FamilyConnectivityTest, PastedTreesAreFPlusOneConnected) {
  const std::size_t f = GetParam();
  const net::Topology topo = test_topology();
  Rng rng(5);
  const net::Graph g = make_pasted_trees(topo, f, rng);
  EXPECT_TRUE(net::is_k_vertex_connected(g, f + 1)) << "f=" << f;
}

INSTANTIATE_TEST_SUITE_P(FaultLevels, FamilyConnectivityTest,
                         ::testing::Values(1, 2, 3));

TEST(Families, KDiamondBandStructure) {
  // Exact multiple of f+1: pure biclique chain, every node has 2(f+1)
  // links (to the previous and next band).
  net::TopologyParams params;
  params.node_count = 48;  // divisible by 2 and 3
  Rng trng(8);
  const net::Topology topo = net::make_topology(params, trng);
  Rng rng(9);
  const net::Graph g = make_k_diamond(topo, 1, rng);
  for (net::NodeId v = 0; v < 48; ++v) {
    EXPECT_EQ(g.degree(v), 4u) << v;  // 2 bands x (f+1) = 4
  }
}

TEST(Families, PastedTreesPreferPhysicalEdges) {
  // Spanning trees are built from physical edges, so most pasted-tree
  // links carry physical latencies.
  const net::Topology topo = test_topology(40);
  Rng rng(10);
  const net::Graph g = make_pasted_trees(topo, 1, rng);
  std::size_t physical = 0, total = 0;
  for (net::NodeId v = 0; v < 40; ++v) {
    for (const net::Edge& e : g.neighbors(v)) {
      if (e.to < v) continue;
      ++total;
      if (topo.graph.has_edge(v, e.to)) ++physical;
    }
  }
  EXPECT_GT(static_cast<double>(physical) / static_cast<double>(total), 0.6);
}

TEST(Families, HypercubePowerOfTwoStructure) {
  net::TopologyParams params;
  params.node_count = 32;
  Rng trng(4);
  const net::Topology topo = net::make_topology(params, trng);
  Rng rng(5);
  const net::Graph g = make_hypercube(topo, 1, rng);
  // Every node has at least the 5 hypercube neighbors (dims = 5).
  for (net::NodeId v = 0; v < 32; ++v) {
    EXPECT_GE(g.degree(v), 5u);
    for (int b = 0; b < 5; ++b) {
      EXPECT_TRUE(g.has_edge(v, v ^ (1u << b)));
    }
  }
}

TEST(Families, FloodReachesEveryone) {
  const net::Topology topo = test_topology();
  Rng rng(6);
  const net::Graph g = make_chordal_ring(topo, 1, rng);
  const FloodMetrics m = measure_flood(g, 0);
  EXPECT_DOUBLE_EQ(m.reached_fraction, 1.0);
  EXPECT_GT(m.avg_latency, 0.0);
  // Source floods on all links.
  EXPECT_DOUBLE_EQ(m.messages_sent[0], static_cast<double>(g.degree(0)));
}

TEST(Families, FloodOnDisconnectedGraphPartialCoverage) {
  net::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const FloodMetrics m = measure_flood(g, 0);
  EXPECT_DOUBLE_EQ(m.reached_fraction, 0.5);
}

TEST(Families, OverlayFloodMatchesDissemination) {
  const net::Topology topo = test_topology();
  RobustTreeParams params;
  params.f = 1;
  RankTable ranks(topo.graph.node_count(), 0.0);
  const Overlay o = build_robust_tree(topo.graph, params, ranks);
  const FloodMetrics m = measure_overlay_flood(o);
  EXPECT_DOUBLE_EQ(m.reached_fraction, 1.0);
  const auto dist = o.dissemination_latencies();
  for (net::NodeId v = 0; v < o.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(m.arrival_ms[v], dist[v]);
  }
}

TEST(Families, RobustTreeLowerLatencyThanChordalRing) {
  // The Figure 2 headline: robust trees trade load balance for latency.
  const net::Topology topo = test_topology(64);
  Rng rng(7);
  const net::Graph ring = make_chordal_ring(topo, 1, rng);
  RobustTreeParams params;
  params.f = 1;
  RankTable ranks(64, 0.0);
  const Overlay tree = build_robust_tree(topo.graph, params, ranks);
  const FloodMetrics ring_m = measure_flood(ring, 0);
  const FloodMetrics tree_m = measure_overlay_flood(tree);
  EXPECT_LT(tree_m.avg_latency, ring_m.avg_latency);
}

}  // namespace
}  // namespace hermes::overlay
