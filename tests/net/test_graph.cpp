#include "net/graph.hpp"

#include <gtest/gtest.h>

namespace hermes::net {
namespace {

Graph line_graph(std::size_t n, double latency = 1.0) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, latency);
  return g;
}

TEST(Graph, AddAndQueryEdges) {
  Graph g(3);
  g.add_edge(0, 1, 5.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(*g.edge_latency(0, 1), 5.0);
  EXPECT_FALSE(g.edge_latency(0, 2).has_value());
}

TEST(Graph, AddEdgeIdempotent) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 1, 9.0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(*g.edge_latency(0, 1), 5.0);  // first latency kept
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, AddNodeGrows) {
  Graph g(1);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(Graph, DijkstraShortestLatencies) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(2, 3, 1.0);
  const auto dist = g.shortest_latencies(0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);  // via 1, not the direct 5.0 edge
  EXPECT_DOUBLE_EQ(dist[3], 3.0);
}

TEST(Graph, DijkstraUnreachable) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto dist = g.shortest_latencies(0);
  EXPECT_EQ(dist[2], kInfLatency);
}

TEST(Graph, HopDistances) {
  const Graph g = line_graph(5);
  const auto hops = g.hop_distances(0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(hops[i], i);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2, 1.0);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, EmptyGraphIsConnected) {
  EXPECT_TRUE(Graph(0).is_connected());
  EXPECT_TRUE(Graph(1).is_connected());
}

TEST(Graph, AveragePairwiseLatencyLine) {
  // Line 0-1-2 with unit edges: pairs (0,1)=1 (0,2)=2 (1,2)=1; both
  // directions -> mean = (1+2+1)*2 / 6 = 4/3.
  const Graph g = line_graph(3);
  EXPECT_NEAR(g.average_pairwise_latency(), 4.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace hermes::net
