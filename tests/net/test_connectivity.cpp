#include "net/connectivity.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/topology.hpp"
#include "support/rng.hpp"

namespace hermes::net {
namespace {

Graph cycle_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n), 1.0);
  }
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) g.add_edge(a, b, 1.0);
  }
  return g;
}

TEST(Connectivity, CycleHasTwoDisjointPaths) {
  const Graph g = cycle_graph(6);
  EXPECT_EQ(max_vertex_disjoint_paths(g, 0, 3), 2u);
}

TEST(Connectivity, LineHasOnePath) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_EQ(max_vertex_disjoint_paths(g, 0, 3), 1u);
}

TEST(Connectivity, DisconnectedPairHasZeroPaths) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_EQ(max_vertex_disjoint_paths(g, 0, 3), 0u);
}

TEST(Connectivity, CompleteGraphPathCount) {
  const Graph g = complete_graph(5);
  // Direct edge + 3 two-hop paths through the other vertices.
  EXPECT_EQ(max_vertex_disjoint_paths(g, 0, 4), 4u);
}

TEST(Connectivity, BottleneckVertexLimitsPaths) {
  // Two triangles sharing a cut vertex 2: 0-1-2 and 2-3-4.
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(2, 4, 1.0);
  EXPECT_EQ(max_vertex_disjoint_paths(g, 0, 4), 1u);
}

TEST(Connectivity, ExtractedPathsAreDisjointAndValid) {
  const Graph g = cycle_graph(8);
  const auto paths = vertex_disjoint_paths(g, 0, 4, 5);
  ASSERT_EQ(paths.size(), 2u);
  std::set<NodeId> interior;
  for (const auto& path : paths) {
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 4u);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]))
          << path[i] << "->" << path[i + 1];
    }
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(interior.insert(path[i]).second)
          << "interior vertex reused: " << path[i];
    }
  }
}

TEST(Connectivity, ExtractRespectsWantLimit) {
  const Graph g = complete_graph(6);
  const auto paths = vertex_disjoint_paths(g, 0, 5, 2);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(Connectivity, VertexConnectivityKnownGraphs) {
  EXPECT_EQ(vertex_connectivity(cycle_graph(7)), 2u);
  EXPECT_EQ(vertex_connectivity(complete_graph(5)), 4u);
  Graph line(3);
  line.add_edge(0, 1, 1.0);
  line.add_edge(1, 2, 1.0);
  EXPECT_EQ(vertex_connectivity(line), 1u);
  Graph disconnected(4);
  disconnected.add_edge(0, 1, 1.0);
  EXPECT_EQ(vertex_connectivity(disconnected), 0u);
}

TEST(Connectivity, IsKVertexConnected) {
  const Graph c = cycle_graph(6);
  EXPECT_TRUE(is_k_vertex_connected(c, 0));
  EXPECT_TRUE(is_k_vertex_connected(c, 1));
  EXPECT_TRUE(is_k_vertex_connected(c, 2));
  EXPECT_FALSE(is_k_vertex_connected(c, 3));
  EXPECT_FALSE(is_k_vertex_connected(Graph(2), 1));  // too few nodes/edges
}

TEST(Connectivity, HypercubeIsFourConnected) {
  // 4-dimensional hypercube: kappa = 4.
  Graph g(16);
  for (NodeId v = 0; v < 16; ++v) {
    for (int b = 0; b < 4; ++b) {
      const NodeId u = v ^ (1u << b);
      if (u > v) g.add_edge(v, u, 1.0);
    }
  }
  EXPECT_EQ(vertex_connectivity(g), 4u);
}

}  // namespace
}  // namespace hermes::net
