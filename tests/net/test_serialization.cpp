#include "net/serialization.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace hermes::net {
namespace {

Topology sample_topology(std::size_t n = 30) {
  TopologyParams params;
  params.node_count = n;
  params.min_degree = 4;
  Rng rng(404);
  return make_topology(params, rng);
}

void expect_equal(const Topology& a, const Topology& b) {
  ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
  ASSERT_EQ(a.regions, b.regions);
  ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (NodeId v = 0; v < a.graph.node_count(); ++v) {
    for (const Edge& e : a.graph.neighbors(v)) {
      const auto lat = b.graph.edge_latency(v, e.to);
      ASSERT_TRUE(lat.has_value()) << v << "-" << e.to;
      EXPECT_NEAR(*lat, e.latency_ms, 0.002);
    }
  }
}

TEST(TopologySerialization, BinaryRoundTrip) {
  const Topology topo = sample_topology();
  const auto decoded = deserialize_topology(serialize_topology(topo));
  ASSERT_TRUE(decoded.has_value());
  expect_equal(topo, *decoded);
}

TEST(TopologySerialization, RejectsBadMagicAndTruncation) {
  auto bytes = serialize_topology(sample_topology());
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_FALSE(deserialize_topology(bad).has_value());
  bytes.pop_back();
  EXPECT_FALSE(deserialize_topology(bytes).has_value());
}

TEST(TopologySerialization, FileRoundTrip) {
  const Topology topo = sample_topology(20);
  const std::string path = ::testing::TempDir() + "/hermes_topo.bin";
  ASSERT_TRUE(save_topology(topo, path));
  const auto loaded = load_topology(path);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(topo, *loaded);
  std::remove(path.c_str());
}

TEST(TopologySerialization, LoadMissingFileFails) {
  EXPECT_FALSE(load_topology("/nonexistent/definitely/missing.bin").has_value());
}

TEST(TopologyCsv, ParsesEdgesAndRegions) {
  const std::string csv =
      "# comment line\n"
      "0,1,12.5\n"
      "1,2,90\n"
      "region,2,4\n"
      "\n"
      "0,2,45.25\n";
  const auto topo = topology_from_csv(csv);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->graph.node_count(), 3u);
  EXPECT_EQ(topo->graph.edge_count(), 3u);
  EXPECT_DOUBLE_EQ(*topo->graph.edge_latency(0, 1), 12.5);
  EXPECT_DOUBLE_EQ(*topo->graph.edge_latency(0, 2), 45.25);
  EXPECT_EQ(topo->regions[2], static_cast<Region>(4));
  // Non-overridden nodes get round-robin regions.
  EXPECT_EQ(topo->regions[0], static_cast<Region>(0));
}

TEST(TopologyCsv, RejectsMalformedInput) {
  EXPECT_FALSE(topology_from_csv("").has_value());
  EXPECT_FALSE(topology_from_csv("0,1\n").has_value());
  EXPECT_FALSE(topology_from_csv("0,0,5\n").has_value());          // self-loop
  EXPECT_FALSE(topology_from_csv("0,1,-3\n").has_value());         // negative
  EXPECT_FALSE(topology_from_csv("a,b,c\n").has_value());          // non-numeric
  EXPECT_FALSE(topology_from_csv("region,0,99\n0,1,5\n").has_value());
}

TEST(TopologyCsv, CsvRoundTrip) {
  const Topology topo = sample_topology(15);
  const auto parsed = topology_from_csv(topology_to_csv(topo));
  ASSERT_TRUE(parsed.has_value());
  expect_equal(topo, *parsed);
}

TEST(TopologyCsv, UsableBySimulator) {
  // A CSV-loaded world must drive the simulator like a synthesized one.
  const std::string csv =
      "0,1,5\n0,2,5\n1,2,5\n1,3,5\n2,3,5\n3,0,5\n";
  const auto topo = topology_from_csv(csv);
  ASSERT_TRUE(topo.has_value());
  EXPECT_TRUE(topo->graph.is_connected());
  EXPECT_EQ(topo->graph.node_count(), 4u);
}

}  // namespace
}  // namespace hermes::net
