#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "net/connectivity.hpp"

namespace hermes::net {
namespace {

TEST(LatencyModel, IntraRegionFollowsInverseGammaMean) {
  Rng rng(1);
  const LatencyModel model{LatencyModelParams{}};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += model.sample(Region::kFrankfurt, Region::kFrankfurt, rng);
  }
  // inv-gamma(2.5, 14) mean = 14/1.5 = 9.33 ms.
  EXPECT_NEAR(sum / n, 14.0 / 1.5, 0.5);
}

TEST(LatencyModel, InterRegionFollowsNormalMean) {
  Rng rng(2);
  const LatencyModel model{LatencyModelParams{}};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += model.sample(Region::kFrankfurt, Region::kNewYork, rng);
  }
  EXPECT_NEAR(sum / n, 90.0, 0.5);
}

TEST(LatencyModel, FloorApplied) {
  LatencyModelParams params;
  params.inter_mean = 0.0;
  params.inter_variance = 0.0001;
  params.floor_ms = 0.5;
  const LatencyModel model{params};
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(model.sample(Region::kTokyo, Region::kLondon, rng), 0.5);
  }
}

TEST(RegionNames, AllDistinct) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kRegionCount; ++i) {
    names.insert(region_name(static_cast<Region>(i)));
  }
  EXPECT_EQ(names.size(), kRegionCount);
}

TEST(Topology, DeterministicGivenSeed) {
  TopologyParams params;
  params.node_count = 60;
  Rng r1(7), r2(7);
  const Topology a = make_topology(params, r1);
  const Topology b = make_topology(params, r2);
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  EXPECT_EQ(a.regions, b.regions);
  for (NodeId v = 0; v < 60; ++v) {
    ASSERT_EQ(a.graph.degree(v), b.graph.degree(v));
  }
}

TEST(Topology, MeetsRequestedConnectivity) {
  TopologyParams params;
  params.node_count = 80;
  params.connectivity = 3;
  params.min_degree = 6;
  Rng rng(8);
  const Topology topo = make_topology(params, rng);
  EXPECT_TRUE(is_k_vertex_connected(topo.graph, 3));
}

TEST(Topology, RegionsBalanced) {
  TopologyParams params;
  params.node_count = 90;
  Rng rng(9);
  const Topology topo = make_topology(params, rng);
  std::array<int, kRegionCount> counts{};
  for (Region r : topo.regions) counts[static_cast<std::size_t>(r)] += 1;
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Topology, MinDegreeSatisfied) {
  TopologyParams params;
  params.node_count = 64;
  params.min_degree = 5;
  Rng rng(10);
  const Topology topo = make_topology(params, rng);
  for (NodeId v = 0; v < 64; ++v) {
    EXPECT_GE(topo.graph.degree(v), 5u);
  }
}

TEST(Topology, EdgeLatenciesPositive) {
  TopologyParams params;
  params.node_count = 50;
  Rng rng(11);
  const Topology topo = make_topology(params, rng);
  for (NodeId v = 0; v < 50; ++v) {
    for (const Edge& e : topo.graph.neighbors(v)) {
      EXPECT_GT(e.latency_ms, 0.0);
    }
  }
}

TEST(Topology, LargeUnverifiedPathStillConnected) {
  TopologyParams params;
  params.node_count = 600;  // above the exact-verification cutoff
  params.connectivity = 2;
  Rng rng(12);
  const Topology topo = make_topology(params, rng);
  EXPECT_TRUE(topo.graph.is_connected());
  for (NodeId v = 0; v < 600; ++v) {
    EXPECT_GE(topo.graph.degree(v), params.connectivity);
  }
}

}  // namespace
}  // namespace hermes::net
