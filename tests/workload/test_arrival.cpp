// Workload generator determinism and distribution shape.
//
// Determinism is byte-level: the same (params, senders) input must yield
// the identical serialized schedule, every time, on every platform — the
// cross-worker replay tests and the fuzzer's load replay depend on it.
// The distribution checks are seeded and exact-tolerance: the sample is a
// pure function of the seed, so the asserted bounds are deterministic
// facts about this generator, not flaky statistical hopes.
#include "workload/arrival.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace hermes::workload {
namespace {

std::vector<net::NodeId> senders(std::size_t n) {
  std::vector<net::NodeId> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<net::NodeId>(i);
  return out;
}

TEST(Arrival, SameSeedYieldsByteIdenticalSchedule) {
  WorkloadParams p;
  p.kind = ArrivalKind::kPoisson;
  p.duration_ms = 5000.0;
  p.rate_hz = 80.0;
  p.seed = 42;
  const auto s = senders(32);
  const Bytes a = serialize_arrivals(generate_arrivals(p, s));
  const Bytes b = serialize_arrivals(generate_arrivals(p, s));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(Arrival, DifferentSeedsYieldDifferentSchedules) {
  WorkloadParams p;
  p.duration_ms = 5000.0;
  p.rate_hz = 80.0;
  p.seed = 42;
  const auto s = senders(32);
  const Bytes a = serialize_arrivals(generate_arrivals(p, s));
  p.seed = 43;
  const Bytes b = serialize_arrivals(generate_arrivals(p, s));
  EXPECT_NE(a, b);
}

TEST(Arrival, AdversarialKindSharesThePoissonSchedule) {
  // kAdversarial arms the reaction machinery in the driver; the honest
  // arrival schedule itself is the Poisson one, byte for byte.
  WorkloadParams p;
  p.kind = ArrivalKind::kPoisson;
  p.duration_ms = 3000.0;
  p.rate_hz = 60.0;
  p.seed = 7;
  const auto s = senders(16);
  const Bytes poisson = serialize_arrivals(generate_arrivals(p, s));
  p.kind = ArrivalKind::kAdversarial;
  EXPECT_EQ(serialize_arrivals(generate_arrivals(p, s)), poisson);
}

TEST(Arrival, SchedulesAreSortedWithinDurationWithLawfulFields) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kHotspot}) {
    WorkloadParams p;
    p.kind = kind;
    p.duration_ms = 10000.0;
    p.rate_hz = 50.0;
    p.seed = 11;
    p.payload_bytes = 300;
    const auto s = senders(20);
    const auto arrivals = generate_arrivals(p, s);
    ASSERT_FALSE(arrivals.empty());
    double prev = 0.0;
    for (const Arrival& a : arrivals) {
      EXPECT_GE(a.at_ms, prev);
      prev = a.at_ms;
      EXPECT_LE(a.at_ms, p.duration_ms);
      EXPECT_LT(a.sender, 20u);
      EXPECT_GE(a.fee, p.fee.base_fee);
      EXPECT_EQ(a.payload_bytes, 300u);
    }
  }
}

TEST(Arrival, PoissonMeanInterArrivalMatchesRate) {
  WorkloadParams p;
  p.kind = ArrivalKind::kPoisson;
  p.duration_ms = 200000.0;  // ~10k arrivals: the sample mean is tight
  p.rate_hz = 50.0;
  p.seed = 3;
  const auto arrivals = generate_arrivals(p, senders(10));
  ASSERT_GT(arrivals.size(), 5000u);
  double sum = 0.0;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    sum += arrivals[i].at_ms - arrivals[i - 1].at_ms;
  }
  const double mean_gap = sum / static_cast<double>(arrivals.size() - 1);
  // Expected 1000/50 = 20 ms. Seeded sample, so 5% is a deterministic
  // bound on *this* draw, with margin (the realized error is well under).
  EXPECT_NEAR(mean_gap, 20.0, 1.0);
}

TEST(Arrival, BurstyThinsToTheDutyCycle) {
  WorkloadParams p;
  p.duration_ms = 200000.0;
  p.rate_hz = 50.0;
  p.seed = 9;
  p.kind = ArrivalKind::kPoisson;
  const double poisson_n =
      static_cast<double>(generate_arrivals(p, senders(10)).size());
  p.kind = ArrivalKind::kBursty;
  p.on_ms = 200.0;
  p.off_ms = 300.0;  // duty cycle 0.4
  const double bursty_n =
      static_cast<double>(generate_arrivals(p, senders(10)).size());
  // ~400 exponential phases over the window: the realized duty cycle of
  // this seed sits a few points off the asymptotic 0.4.
  const double ratio = bursty_n / poisson_n;
  EXPECT_NEAR(ratio, 0.4, 0.08);
  // And the burstiness is real: squared coefficient of variation of the
  // inter-arrival gaps well above the Poisson value of 1.
  const auto arrivals = generate_arrivals(p, senders(10));
  double sum = 0.0, sq = 0.0;
  const double n = static_cast<double>(arrivals.size() - 1);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    const double gap = arrivals[i].at_ms - arrivals[i - 1].at_ms;
    sum += gap;
    sq += gap * gap;
  }
  const double mean = sum / n;
  const double cv2 = (sq / n - mean * mean) / (mean * mean);
  EXPECT_GT(cv2, 1.5);
}

TEST(Arrival, HotspotConcentratesSenders) {
  WorkloadParams p;
  p.kind = ArrivalKind::kHotspot;
  p.duration_ms = 100000.0;
  p.rate_hz = 50.0;
  p.hotspot_origins = 4;
  p.hotspot_weight = 0.8;
  p.seed = 13;
  const auto s = senders(40);
  const auto arrivals = generate_arrivals(p, s);
  ASSERT_GT(arrivals.size(), 2000u);
  std::size_t hot = 0;
  for (const Arrival& a : arrivals) {
    if (a.sender < 4) ++hot;
  }
  const double frac = static_cast<double>(hot) /
                      static_cast<double>(arrivals.size());
  EXPECT_NEAR(frac, 0.8, 0.03);
  // A uniform process over 40 senders would put ~10% on the hot set; the
  // concentration is the distinguishing feature, not just the mean.
  EXPECT_GT(frac, 0.5);
}

TEST(Arrival, FeeTipsAreExponentialAroundTheMean) {
  WorkloadParams p;
  p.duration_ms = 100000.0;
  p.rate_hz = 50.0;
  p.seed = 17;
  p.fee.base_fee = 10;
  p.fee.tip_mean = 20.0;
  const auto arrivals = generate_arrivals(p, senders(10));
  ASSERT_GT(arrivals.size(), 2000u);
  double sum = 0.0;
  std::uint64_t max_fee = 0;
  for (const Arrival& a : arrivals) {
    ASSERT_GE(a.fee, 10u);
    sum += static_cast<double>(a.fee - 10);
    max_fee = std::max(max_fee, a.fee);
  }
  const double mean_tip = sum / static_cast<double>(arrivals.size());
  // Floored exponential(mean 20): expected sample mean ~19.5.
  EXPECT_NEAR(mean_tip, 19.5, 1.5);
  // Heavy tail present: some bids land far above the mean.
  EXPECT_GT(max_fee, 100u);
}

TEST(Arrival, SerializationIsInjectiveOnFieldChanges) {
  Arrival a;
  a.at_ms = 12.5;
  a.sender = 3;
  a.fee = 40;
  a.payload_bytes = 250;
  const std::vector<Arrival> base{a};
  const Bytes ref = serialize_arrivals(base);
  for (int field = 0; field < 4; ++field) {
    Arrival m = a;
    if (field == 0) m.at_ms = 12.6;
    if (field == 1) m.sender = 4;
    if (field == 2) m.fee = 41;
    if (field == 3) m.payload_bytes = 251;
    EXPECT_NE(serialize_arrivals(std::vector<Arrival>{m}), ref)
        << "field " << field;
  }
}

}  // namespace
}  // namespace hermes::workload
