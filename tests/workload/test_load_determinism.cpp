// Cross-worker determinism of the sustained-load pipeline: a multi-tx
// workload (mempool pressure + front-running attacks armed) replayed at
// engine worker counts {1, 2, 4} must produce the byte-identical send
// trace AND the identical attacker-economics report. This extends the
// fuzz corpus contract (tests/fuzz/test_workers_determinism.cpp) to the
// workload engine: parallelism may only change wall-clock time.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "crypto/sha256.hpp"
#include "hermes/hermes_node.hpp"
#include "protocols/narwhal.hpp"
#include "support/bytes.hpp"
#include "workload/driver.hpp"
#include "workload/economics.hpp"

namespace hermes::workload {
namespace {

struct LoadRun {
  std::string trace_hash;
  std::size_t sends = 0;
  std::string economics;  // canonical rendering of the full report
};

std::string render(const EconomicsReport& report) {
  std::ostringstream out;
  out << report.attacked << '/' << report.insertions << '/'
      << report.sandwiches << '/' << report.total_profit << '\n';
  for (const AttackRecord& r : report.attacks) {
    out << r.victim_id << ' ' << r.attack_id << ' ' << r.victim_fee << ' '
        << r.attack_fee << ' ' << r.attacker << ' ' << r.victim_sender << ' '
        << r.hop_distance << ' ' << r.insertion_success << ' '
        << r.sandwich_success << ' ' << r.profit << '\n';
  }
  for (const PositionBucket& b : report.by_distance) {
    out << b.attacks << ':' << b.successes << ':' << b.profit << '\n';
  }
  return out.str();
}

LoadRun run_load(protocols::Protocol& protocol, std::size_t workers,
                 std::uint64_t seed) {
  net::TopologyParams tp;
  tp.node_count = 48;
  tp.min_degree = 5;
  Rng trng(seed);
  sim::NetworkParams np;
  np.workers = workers;
  protocols::ExperimentContext ctx(net::make_topology(tp, trng), np,
                                   seed ^ 0x5eedULL);
  ctx.assign_behaviors(0.15, protocols::Behavior::kFrontRunner);
  ctx.mempool_capacity = 24;  // pressure: evictions happen mid-run
  protocols::populate(ctx, protocol);

  crypto::Sha256 hasher;
  std::size_t sends = 0;
  ctx.network.set_send_tap(
      [&hasher, &sends](const sim::Message& msg, sim::SimTime now) {
        Bytes record;
        record.reserve(32);
        std::uint64_t time_bits = 0;
        static_assert(sizeof(time_bits) == sizeof(now));
        std::memcpy(&time_bits, &now, sizeof(time_bits));
        put_u64_be(record, time_bits);
        put_u32_be(record, msg.src);
        put_u32_be(record, msg.dst);
        put_u32_be(record, msg.type);
        put_u64_be(record, msg.wire_bytes);
        hasher.update(record);
        ++sends;
      });

  WorkloadParams wp;
  wp.kind = ArrivalKind::kAdversarial;
  wp.duration_ms = 600.0;
  wp.rate_hz = 30.0;
  wp.seed = seed;
  const ScheduleResult sched = schedule_workload(ctx, wp);
  ctx.engine.run_until(sched.horizon_ms + 5000.0);

  LoadRun out;
  out.trace_hash = hex_encode(crypto::digest_to_bytes(hasher.finish()));
  out.sends = sends;
  out.economics = render(analyze_attacks(ctx, sched.txs));
  return out;
}

class WorkloadWorkers : public ::testing::Test {
 protected:
  void check(const std::function<std::unique_ptr<protocols::Protocol>()>& make,
             std::uint64_t seed) {
    auto base_protocol = make();
    const LoadRun base = run_load(*base_protocol, 1, seed);
    ASSERT_GT(base.sends, 0u);
    // The attack machinery must actually have fired, or the economics
    // comparison is vacuous.
    ASSERT_NE(base.economics.substr(0, 2), "0/");
    for (const std::size_t workers : {2, 4}) {
      auto protocol = make();
      const LoadRun r = run_load(*protocol, workers, seed);
      EXPECT_EQ(r.trace_hash, base.trace_hash) << "workers=" << workers;
      EXPECT_EQ(r.sends, base.sends) << "workers=" << workers;
      EXPECT_EQ(r.economics, base.economics) << "workers=" << workers;
    }
  }
};

TEST_F(WorkloadWorkers, HermesLoadedTraceAndEconomicsIdentical) {
  check(
      [] {
        hermes_proto::HermesConfig cfg;
        cfg.f = 1;
        cfg.k = 4;
        cfg.builder.annealing.initial_temperature = 5.0;
        cfg.builder.annealing.min_temperature = 1.0;
        cfg.builder.annealing.cooling_rate = 0.8;
        cfg.builder.annealing.moves_per_temperature = 4;
        return std::make_unique<hermes_proto::HermesProtocol>(cfg);
      },
      2026);
}

TEST_F(WorkloadWorkers, NarwhalLoadedTraceAndEconomicsIdentical) {
  check([] { return std::make_unique<protocols::NarwhalProtocol>(); }, 2027);
}

// Batching at origin rides the same contract: the batch path (HERMES
// erasure-coded submit_batch) must stay deterministic across workers too.
TEST_F(WorkloadWorkers, BatchedSubmissionsDeterministicAcrossWorkers) {
  auto make = [] {
    hermes_proto::HermesConfig cfg;
    cfg.f = 1;
    cfg.k = 4;
    cfg.builder.annealing.initial_temperature = 5.0;
    cfg.builder.annealing.min_temperature = 1.0;
    cfg.builder.annealing.cooling_rate = 0.8;
    cfg.builder.annealing.moves_per_temperature = 4;
    return std::make_unique<hermes_proto::HermesProtocol>(cfg);
  };
  auto run = [&make](std::size_t workers) {
    auto protocol = make();
    net::TopologyParams tp;
    tp.node_count = 32;
    tp.min_degree = 5;
    Rng trng(4711);
    sim::NetworkParams np;
    np.workers = workers;
    protocols::ExperimentContext ctx(net::make_topology(tp, trng), np, 4711);
    protocols::populate(ctx, *protocol);
    crypto::Sha256 hasher;
    ctx.network.set_send_tap(
        [&hasher](const sim::Message& msg, sim::SimTime now) {
          Bytes record;
          std::uint64_t time_bits = 0;
          std::memcpy(&time_bits, &now, sizeof(time_bits));
          put_u64_be(record, time_bits);
          put_u32_be(record, msg.src);
          put_u32_be(record, msg.dst);
          put_u32_be(record, msg.type);
          put_u64_be(record, msg.wire_bytes);
          hasher.update(record);
        });
    WorkloadParams wp;
    wp.kind = ArrivalKind::kHotspot;  // hot senders: batches actually form
    wp.duration_ms = 400.0;
    wp.rate_hz = 40.0;
    wp.hotspot_origins = 2;
    wp.seed = 4711;
    const ScheduleResult sched =
        schedule_workload(ctx, wp, /*batch_window_ms=*/30.0);
    EXPECT_LT(sched.batches, sched.txs.size());  // batching engaged
    ctx.engine.run_until(sched.horizon_ms + 5000.0);
    return hex_encode(crypto::digest_to_bytes(hasher.finish()));
  };
  const std::string base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(4), base);
}

}  // namespace
}  // namespace hermes::workload
