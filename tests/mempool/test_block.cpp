#include "mempool/block.hpp"

#include <gtest/gtest.h>

#include "../protocols/harness.hpp"
#include "protocols/l0.hpp"

namespace hermes::mempool {
namespace {

TEST(Block, BuildOrdersByPositionThenId) {
  std::vector<OrderedCandidate> candidates{
      {30, 2}, {10, 0}, {20, 1}, {40, 2},  // 30 and 40 tie at position 2
  };
  const Block block = build_block(5, 7, 100.0, candidates, 10);
  EXPECT_EQ(block.proposer, 5u);
  EXPECT_EQ(block.height, 7u);
  EXPECT_EQ(block.tx_ids, (std::vector<std::uint64_t>{10, 20, 30, 40}));
}

TEST(Block, SkipsIneligibleAndTruncates) {
  std::vector<OrderedCandidate> candidates{
      {1, 3}, {2, SIZE_MAX}, {3, 1}, {4, 0}, {5, 2},
  };
  const Block block = build_block(1, 1, 0.0, candidates, 3);
  EXPECT_EQ(block.tx_ids, (std::vector<std::uint64_t>{4, 3, 5}));
  EXPECT_FALSE(block.contains(2));
  EXPECT_FALSE(block.contains(1));  // truncated away
}

TEST(Block, PositionAndOrdering) {
  Block block;
  block.tx_ids = {7, 8, 9};
  EXPECT_EQ(block.position(8), 1u);
  EXPECT_EQ(block.position(99), SIZE_MAX);
  EXPECT_TRUE(block.orders_before(7, 9));
  EXPECT_FALSE(block.orders_before(9, 8));
}

TEST(Block, HashBindsContentAndOrder) {
  Block a;
  a.proposer = 1;
  a.height = 5;
  a.tx_ids = {1, 2, 3};
  Block b = a;
  b.tx_ids = {2, 1, 3};
  Block c = a;
  c.height = 6;
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_EQ(a.hash(), [&] { return a.hash(); }());
}

TEST(Block, ProposeBlockMatchesFrontRunVerdict) {
  // The Section VIII-F verdict and the literal block content must agree:
  // attack succeeds iff the adversarial tx precedes the victim in the
  // proposer's block.
  using namespace hermes::protocols;
  GossipProtocol protocol;
  testing::World w(40, protocol, 77);
  w.ctx->assign_behaviors(0.3, Behavior::kFrontRunner);
  w.ctx->attack_enabled = true;
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const Transaction victim = inject_tx(*w.ctx, sender);
  w.run_ms(5000);
  ASSERT_EQ(w.ctx->adversarial_of.count(victim.id), 1u);
  const Transaction& attack = w.ctx->adversarial_of[victim.id];

  for (net::NodeId proposer = 0; proposer < 40; ++proposer) {
    if (!w.ctx->is_honest(proposer)) continue;
    const ProtocolNode& node = w.ctx->node(proposer);
    const Block block = node.propose_block(1, 1000);
    if (!block.contains(victim.id) || !block.contains(attack.id)) continue;
    const bool block_says_attack_first =
        block.orders_before(attack.id, victim.id);
    const bool verdict_says_attack_first =
        node.ordering_position(attack) < node.ordering_position(victim);
    EXPECT_EQ(block_says_attack_first, verdict_says_attack_first)
        << "proposer " << proposer;
  }
}

TEST(Block, L0ProposerExcludesUncommittedTxs) {
  // Under LØ's rules a transaction without a commitment is not eligible
  // for a block (ordering_position = SIZE_MAX for unknown commitments is
  // shifted but present; a tx missing entirely never appears).
  using namespace hermes::protocols;
  L0Protocol protocol;
  testing::World w(30, protocol, 78);
  w.start();
  const Transaction tx = w.send_from(2);
  w.run_ms(4000);
  for (net::NodeId v = 0; v < 30; ++v) {
    const Block block = w.ctx->node(v).propose_block(1, 100);
    if (w.ctx->node(v).pool().contains(tx.id)) {
      EXPECT_TRUE(block.contains(tx.id)) << v;
    } else {
      EXPECT_FALSE(block.contains(tx.id)) << v;
    }
  }
}

}  // namespace
}  // namespace hermes::mempool
