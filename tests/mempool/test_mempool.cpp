#include "mempool/mempool.hpp"

#include <gtest/gtest.h>

namespace hermes::mempool {
namespace {

Transaction make_tx(net::NodeId sender, std::uint64_t seq) {
  Transaction tx;
  tx.sender = sender;
  tx.sender_seq = seq;
  tx.id = Transaction::make_id(sender, seq);
  return tx;
}

TEST(Transaction, IdEncodesSenderAndSeq) {
  const std::uint64_t id = Transaction::make_id(7, 42);
  EXPECT_EQ(id >> 32, 7u);
  EXPECT_EQ(id & 0xffffffff, 42u);
}

TEST(Transaction, HashBindsFields) {
  Transaction a = make_tx(1, 1);
  Transaction b = make_tx(1, 2);
  Transaction c = make_tx(2, 1);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_EQ(a.hash(), make_tx(1, 1).hash());
}

TEST(Mempool, InsertAndQuery) {
  Mempool pool;
  const Transaction tx = make_tx(1, 1);
  EXPECT_TRUE(pool.insert(tx, 10.0));
  EXPECT_TRUE(pool.contains(tx.id));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_DOUBLE_EQ(pool.arrival_time(tx.id), 10.0);
  const auto fetched = pool.get(tx.id);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->sender, 1u);
}

TEST(Mempool, DuplicateInsertKeepsFirstArrival) {
  Mempool pool;
  const Transaction tx = make_tx(1, 1);
  EXPECT_TRUE(pool.insert(tx, 10.0));
  EXPECT_FALSE(pool.insert(tx, 20.0));
  EXPECT_DOUBLE_EQ(pool.arrival_time(tx.id), 10.0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, ArrivalOrderAndPositions) {
  Mempool pool;
  const Transaction a = make_tx(1, 1), b = make_tx(2, 1), c = make_tx(3, 1);
  pool.insert(b, 1.0);
  pool.insert(a, 2.0);
  pool.insert(c, 3.0);
  EXPECT_EQ(pool.arrival_order(),
            (std::vector<std::uint64_t>{b.id, a.id, c.id}));
  EXPECT_EQ(pool.arrival_position(b.id), 0u);
  EXPECT_EQ(pool.arrival_position(a.id), 1u);
  EXPECT_EQ(pool.arrival_position(c.id), 2u);
  EXPECT_EQ(pool.arrival_position(999), SIZE_MAX);
}

TEST(Mempool, Commitments) {
  Mempool pool;
  const Transaction tx = make_tx(4, 9);
  EXPECT_FALSE(pool.has_commitment(tx.hash()));
  pool.add_commitment(Commitment{tx.hash(), 4, 1.0});
  EXPECT_TRUE(pool.has_commitment(tx.hash()));
  EXPECT_EQ(pool.commitment_count(), 1u);
  // Idempotent.
  pool.add_commitment(Commitment{tx.hash(), 5, 2.0});
  EXPECT_EQ(pool.commitment_count(), 1u);
}

TEST(Mempool, DigestSortedAndReconciliation) {
  Mempool a, b;
  const Transaction t1 = make_tx(1, 1), t2 = make_tx(1, 2), t3 = make_tx(2, 1);
  a.insert(t2, 1.0);
  a.insert(t1, 2.0);
  a.insert(t3, 3.0);
  b.insert(t1, 1.0);
  const auto digest_b = b.digest();
  EXPECT_TRUE(std::is_sorted(digest_b.begin(), digest_b.end()));
  const auto missing = a.missing_from(digest_b);
  // a has t1, t2, t3; b has t1 -> b misses t2 and t3.
  EXPECT_EQ(missing.size(), 2u);
  EXPECT_TRUE(std::find(missing.begin(), missing.end(), t2.id) != missing.end());
  EXPECT_TRUE(std::find(missing.begin(), missing.end(), t3.id) != missing.end());
  // Symmetric direction: b misses nothing that a has... b -> a.
  EXPECT_TRUE(b.missing_from(a.digest()).empty());
}

TEST(Mempool, GetAbsentReturnsNullopt) {
  Mempool pool;
  EXPECT_FALSE(pool.get(123).has_value());
  EXPECT_DOUBLE_EQ(pool.arrival_time(123), -1.0);
}

}  // namespace
}  // namespace hermes::mempool
