// Property tests for fee-priority admission under bounded capacity.
//
// The model: with capacity C, the resident set always equals the top-C
// slice of everything offered under the strict (fee desc, id desc) order —
// a pure function of the offered SET, independent of the order in which
// the offers arrived — until commits remove entries (committed residents
// leave and nothing backfills the freed slots). The tests check the pool
// against a reference model rebuilt from scratch, across seeded random
// operation streams and across permutations of the same offer set.
#include "mempool/mempool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "support/rng.hpp"

namespace hermes::mempool {
namespace {

Transaction make_tx(net::NodeId sender, std::uint64_t seq,
                    std::uint64_t fee) {
  Transaction tx;
  tx.sender = sender;
  tx.sender_seq = seq;
  tx.id = Transaction::make_id(sender, seq);
  tx.fee = fee;
  return tx;
}

// The pool's priority order, re-stated independently: fee desc, id desc.
bool outranks(const Transaction& a, const Transaction& b) {
  if (a.fee != b.fee) return a.fee > b.fee;
  return a.id > b.id;
}

// Reference resident set: top-capacity slice of the offered set.
std::set<std::uint64_t> model_residents(std::vector<Transaction> offered,
                                        std::size_t capacity) {
  std::sort(offered.begin(), offered.end(), outranks);
  std::set<std::uint64_t> out;
  for (std::size_t i = 0; i < offered.size() && i < capacity; ++i) {
    out.insert(offered[i].id);
  }
  return out;
}

std::set<std::uint64_t> pool_residents(const Mempool& pool) {
  const auto digest = pool.digest();
  return {digest.begin(), digest.end()};
}

TEST(MempoolPressure, CapacityBoundHoldsAfterEveryInsert) {
  constexpr std::size_t kCapacity = 16;
  Mempool pool;
  pool.set_capacity(kCapacity);
  Rng rng(101);
  for (std::uint64_t i = 0; i < 400; ++i) {
    const auto sender = static_cast<net::NodeId>(rng.uniform_u64(8));
    pool.insert(make_tx(sender, i, rng.uniform_u64(50)), static_cast<double>(i));
    ASSERT_LE(pool.size(), kCapacity) << "after insert " << i;
    ASSERT_EQ(pool.digest().size(), pool.size());
  }
  EXPECT_EQ(pool.admitted_total(),
            pool.size() + pool.evicted_total() + pool.committed_total());
  EXPECT_EQ(pool.admitted_total() + pool.rejected_total(), 400u);
}

TEST(MempoolPressure, ResidentSetMatchesReferenceModelUnderRandomLoad) {
  // Insert-only phase: the resident set is a pure function of the offered
  // SET — after every insert it equals the model's top-capacity slice.
  // (With commits interleaved the pool is deliberately NOT pure: an
  // evicted body may never backfill a commit-freed slot, see below.)
  constexpr std::size_t kCapacity = 12;
  Mempool pool;
  pool.set_capacity(kCapacity);
  Rng rng(202);
  std::vector<Transaction> offered;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const Transaction tx =
        make_tx(static_cast<net::NodeId>(rng.uniform_u64(6)), i,
                rng.uniform_u64(20));
    offered.push_back(tx);
    pool.insert(tx, static_cast<double>(i));
    ASSERT_EQ(pool_residents(pool), model_residents(offered, kCapacity))
        << "after insert " << i;
  }

  // Commit phase: committed residents leave the pool, and the freed slots
  // stay empty — no evicted or rejected body resurrects to backfill them.
  std::set<std::uint64_t> expected = model_residents(offered, kCapacity);
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t victim = pool.digest()[rng.uniform_u64(pool.size())];
    ASSERT_TRUE(pool.mark_committed(victim));
    expected.erase(victim);
    ASSERT_EQ(pool_residents(pool), expected);
    ASSERT_EQ(pool.size(), expected.size());
  }
  EXPECT_EQ(pool.admitted_total(),
            pool.size() + pool.evicted_total() + pool.committed_total());
}

TEST(MempoolPressure, EveryEvictionDisplacesTheResidentMinimum) {
  Mempool pool;
  pool.set_capacity(8);
  Rng rng(303);
  for (std::uint64_t i = 0; i < 200; ++i) {
    pool.insert(make_tx(1, i, rng.uniform_u64(30)), static_cast<double>(i));
  }
  EXPECT_GT(pool.evicted_total(), 0u);
  for (const Eviction& ev : pool.eviction_log()) {
    // Fee-lawful: the incoming strictly outranks what it displaced.
    Transaction in = make_tx(0, 0, ev.incoming_fee);
    in.id = ev.incoming_id;
    Transaction out = make_tx(0, 0, ev.evicted_fee);
    out.id = ev.evicted_id;
    EXPECT_TRUE(outranks(in, out))
        << "eviction of " << ev.evicted_id << " by " << ev.incoming_id;
    // The evicted id really left the resident set for good.
    EXPECT_FALSE(pool.contains(ev.evicted_id));
    EXPECT_TRUE(pool.seen(ev.evicted_id));
    EXPECT_EQ(pool.admission_of(ev.evicted_id), Mempool::Admission::kEvicted);
  }
}

TEST(MempoolPressure, CommittedTransactionsNeverResurrect) {
  Mempool pool;
  pool.set_capacity(4);
  const Transaction tx = make_tx(1, 1, 100);
  EXPECT_TRUE(pool.insert(tx, 1.0));
  ASSERT_TRUE(pool.mark_committed(tx.id));
  EXPECT_EQ(pool.admission_of(tx.id), Mempool::Admission::kCommitted);
  // Re-offering the committed body is not fresh and must not re-admit,
  // even though the pool has free space and the fee tops the pool.
  EXPECT_FALSE(pool.insert(tx, 2.0));
  EXPECT_FALSE(pool.contains(tx.id));
  EXPECT_EQ(pool.admission_of(tx.id), Mempool::Admission::kCommitted);
  EXPECT_EQ(pool.committed_total(), 1u);
  // Same for an evicted body: seen() dedup keeps it out of the arrival log.
  const std::size_t arrivals = pool.arrival_order().size();
  EXPECT_FALSE(pool.insert(tx, 3.0));
  EXPECT_EQ(pool.arrival_order().size(), arrivals);
}

TEST(MempoolPressure, ResidentSetInvariantUnderInsertionOrderPermutations) {
  constexpr std::size_t kCapacity = 6;
  // An equal-fee band plus a few distinct fees: ties must break on id, so
  // every permutation of the offer sequence lands the same resident set.
  std::vector<Transaction> txs;
  for (std::uint64_t i = 0; i < 10; ++i) txs.push_back(make_tx(1, i, 7));
  for (std::uint64_t i = 10; i < 16; ++i)
    txs.push_back(make_tx(2, i, 3 + i % 4));

  std::set<std::uint64_t> first;
  Rng rng(404);
  for (int perm = 0; perm < 20; ++perm) {
    std::vector<Transaction> order = txs;
    // Fisher-Yates with the seeded Rng: deterministic permutations.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_u64(i)]);
    }
    Mempool pool;
    pool.set_capacity(kCapacity);
    double now = 0.0;
    for (const Transaction& tx : order) pool.insert(tx, now += 1.0);
    const auto residents = pool_residents(pool);
    ASSERT_EQ(residents.size(), kCapacity);
    ASSERT_EQ(residents, model_residents(txs, kCapacity))
        << "permutation " << perm;
    if (perm == 0) {
      first = residents;
    } else {
      ASSERT_EQ(residents, first) << "permutation " << perm;
    }
    EXPECT_EQ(pool.admitted_total(),
              pool.size() + pool.evicted_total() + pool.committed_total());
  }
}

TEST(MempoolPressure, RejectionBelowResidentMinimumLeavesLogClean) {
  Mempool pool;
  pool.set_capacity(2);
  pool.insert(make_tx(1, 1, 50), 1.0);
  pool.insert(make_tx(1, 2, 60), 2.0);
  const std::size_t evictions = pool.evicted_total();
  const Transaction low = make_tx(1, 3, 1);
  // Fresh (seen-wise) but below the resident minimum: rejected, no
  // eviction, and it never enters the arrival log's resident view.
  EXPECT_TRUE(pool.insert(low, 3.0));
  EXPECT_EQ(pool.admission_of(low.id), Mempool::Admission::kRejected);
  EXPECT_FALSE(pool.contains(low.id));
  EXPECT_TRUE(pool.seen(low.id));
  EXPECT_EQ(pool.evicted_total(), evictions);
  EXPECT_EQ(pool.rejected_total(), 1u);
  EXPECT_EQ(pool.arrival_position(low.id), SIZE_MAX);
}

TEST(MempoolPressure, UnboundedPoolNeverEvictsOrRejects) {
  Mempool pool;  // capacity 0: historical unbounded behaviour
  Rng rng(505);
  for (std::uint64_t i = 0; i < 200; ++i) {
    pool.insert(make_tx(1, i, rng.uniform_u64(10)), static_cast<double>(i));
  }
  EXPECT_EQ(pool.size(), 200u);
  EXPECT_EQ(pool.evicted_total(), 0u);
  EXPECT_EQ(pool.rejected_total(), 0u);
  EXPECT_EQ(pool.admitted_total(), 200u);
}

}  // namespace
}  // namespace hermes::mempool
