// Cross-protocol adversarial-machinery tests: ordering judges, censorship
// via relays_tx, Narwhal certificate ordering and ack withholding, LØ
// commitment ordering, and the serialization model feeding Figure 3a.
#include <gtest/gtest.h>

#include "harness.hpp"
#include "protocols/l0.hpp"
#include "protocols/mercury.hpp"
#include "protocols/narwhal.hpp"

namespace hermes::protocols {
namespace {

using testing::World;

TEST(OrderingJudge, DefaultUsesArrivalOrder) {
  GossipProtocol protocol;
  World w(20, protocol);
  w.start();
  const Transaction a = w.send_from(0);
  w.run_ms(1500);
  const Transaction b = w.send_from(1);
  w.run_ms(1500);
  // At any node holding both, a precedes b.
  for (net::NodeId v = 0; v < 20; ++v) {
    const auto& node = w.ctx->node(v);
    const std::size_t pa = node.ordering_position(a);
    const std::size_t pb = node.ordering_position(b);
    if (pa != SIZE_MAX && pb != SIZE_MAX) EXPECT_LT(pa, pb);
  }
}

TEST(OrderingJudge, L0UsesCommitmentOrder) {
  L0Protocol protocol;
  World w(30, protocol);
  w.start();
  const Transaction a = w.send_from(0);
  w.run_ms(2500);
  const Transaction b = w.send_from(1);
  w.run_ms(4000);
  std::size_t judged = 0;
  for (net::NodeId v = 0; v < 30; ++v) {
    const auto& node = w.ctx->node(v);
    if (node.pool().has_commitment(a.hash()) &&
        node.pool().has_commitment(b.hash())) {
      EXPECT_LT(node.ordering_position(a), node.ordering_position(b));
      ++judged;
    }
  }
  EXPECT_GT(judged, 20u);
}

TEST(OrderingJudge, NarwhalUsesCertificateOrder) {
  NarwhalProtocol protocol;
  World w(30, protocol);
  w.start();
  const Transaction a = w.send_from(0);
  w.run_ms(2500);
  const Transaction b = w.send_from(1);
  w.run_ms(4000);
  std::size_t judged = 0;
  for (net::NodeId v = 0; v < 30; ++v) {
    const auto& node = w.ctx->node(v);
    const std::size_t pa = node.ordering_position(a);
    const std::size_t pb = node.ordering_position(b);
    if (pa != SIZE_MAX && pb != SIZE_MAX && pa < (1 << 20) && pb < (1 << 20)) {
      EXPECT_LT(pa, pb);
      ++judged;
    }
  }
  EXPECT_GT(judged, 20u);  // certificates reached (almost) everyone
}

TEST(Censorship, FrontRunnersWithholdVictimInGossip) {
  // A single-path topology would show censorship directly; with gossip's
  // redundancy we instead verify the relays_tx predicate itself.
  GossipProtocol protocol;
  World w(20, protocol);
  w.ctx->assign_behaviors(0.3, Behavior::kFrontRunner);
  w.ctx->attack_enabled = true;
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const Transaction victim = inject_tx(*w.ctx, sender);
  w.run_ms(3000);
  ASSERT_EQ(w.ctx->adversarial_of.count(victim.id), 1u);
  const Transaction& attack = w.ctx->adversarial_of[victim.id];
  for (net::NodeId v = 0; v < 20; ++v) {
    const auto& node = w.ctx->node(v);
    if (node.behavior() == Behavior::kFrontRunner) {
      EXPECT_FALSE(node.relays_tx(victim));
      EXPECT_TRUE(node.relays_tx(attack));  // own traffic flows
    } else if (node.behavior() == Behavior::kHonest) {
      EXPECT_TRUE(node.relays_tx(victim));
    }
  }
}

TEST(Censorship, AttackerIdentityIsTracked) {
  GossipProtocol protocol;
  World w(20, protocol);
  w.ctx->assign_behaviors(0.3, Behavior::kFrontRunner);
  w.ctx->attack_enabled = true;
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const Transaction victim = inject_tx(*w.ctx, sender);
  w.run_ms(3000);
  ASSERT_EQ(w.ctx->adversarial_of.count(victim.id), 1u);
  const net::NodeId attacker = w.ctx->adversarial_of[victim.id].sender;
  EXPECT_EQ(w.ctx->behaviors[attacker], Behavior::kFrontRunner);
  EXPECT_TRUE(w.ctx->node(attacker).is_my_victim(victim));
  // Other front-runners did not attack this victim.
  for (net::NodeId v = 0; v < 20; ++v) {
    if (v != attacker && w.ctx->behaviors[v] == Behavior::kFrontRunner) {
      EXPECT_FALSE(w.ctx->node(v).is_my_victim(victim));
    }
  }
}

TEST(Narwhal, BatchDelayShowsUpInLatency) {
  NarwhalParams slow;
  slow.batch_delay_ms = 200.0;
  NarwhalParams fast;
  fast.batch_delay_ms = 0.0;
  NarwhalProtocol p_slow(slow), p_fast(fast);
  World ws(30, p_slow, 3), wf(30, p_fast, 3);
  ws.start();
  wf.start();
  const Transaction ts = ws.send_from(0);
  const Transaction tf = wf.send_from(0);
  ws.run_ms(3000);
  wf.run_ms(3000);
  const double mean_slow = mean_of(ws.ctx->tracker.latencies(ts.id));
  const double mean_fast = mean_of(wf.ctx->tracker.latencies(tf.id));
  EXPECT_NEAR(mean_slow - mean_fast, 200.0, 40.0);
}

TEST(Mercury, VcsTrafficAccrues) {
  MercuryParams with;
  with.vcs_update_interval_ms = 200.0;
  MercuryParams without;
  without.vcs_update_interval_ms = 0.0;
  MercuryProtocol p_with(with), p_without(without);
  World w1(30, p_with, 9), w2(30, p_without, 9);
  w1.start();
  w2.start();
  w1.run_ms(5000);
  w2.run_ms(5000);
  EXPECT_GT(w1.ctx->network.total().messages_sent, 500u);
  EXPECT_EQ(w2.ctx->network.total().messages_sent, 0u);
}

TEST(TransitFaults, ByzantineIntermediariesDropCrossTraffic) {
  // With transit faults on, messages between non-adjacent nodes die when a
  // Byzantine node sits on the underlay shortest path; neighbor links are
  // unaffected.
  NarwhalParams params;
  params.batch_delay_ms = 0.0;
  NarwhalProtocol protocol(params);
  World w(40, protocol, 31);
  w.ctx->assign_behaviors(0.4, Behavior::kDropper);
  enable_transit_faults(*w.ctx);
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const auto before = w.ctx->network.dropped_messages();
  inject_tx(*w.ctx, sender);
  w.run_ms(3000);
  EXPECT_GT(w.ctx->network.dropped_messages(), before);
}

TEST(TransitFaults, NeighborTrafficUnaffected) {
  GossipProtocol protocol;  // gossip uses only neighbor links
  World w(30, protocol, 32);
  w.ctx->assign_behaviors(0.3, Behavior::kDropper);
  enable_transit_faults(*w.ctx);
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const Transaction tx = inject_tx(*w.ctx, sender);
  w.run_ms(4000);
  // Neighbor-link gossip through honest relays still covers a majority.
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.5);
}

TEST(Serialization, UplinkQueueDelaysWideFanouts) {
  // With a slow uplink, a node sending to everyone pays serialization; the
  // last receivers see noticeably later deliveries than the first.
  net::TopologyParams tp;
  tp.node_count = 60;
  tp.min_degree = 5;
  Rng trng(77);
  sim::NetworkParams np;
  np.link_bandwidth_mbps = 1.0;  // deliberately slow: 250B ~ 2 ms
  NarwhalParams params;
  params.batch_delay_ms = 0.0;
  NarwhalProtocol protocol(params);
  ExperimentContext ctx(net::make_topology(tp, trng), np, 5);
  populate(ctx, protocol);
  const Transaction tx = inject_tx(ctx, 0);
  ctx.engine.run_until(5000.0);
  const auto lats = ctx.tracker.latencies(tx.id);
  const Summary s = summarize(lats);
  // 59 direct sends x ~2.3 ms wire time: the spread must exceed 100 ms.
  EXPECT_GT(s.max - s.min, 100.0);
}

TEST(Serialization, DisabledModelHasNoQueueing) {
  net::TopologyParams tp;
  tp.node_count = 30;
  Rng trng(78);
  sim::NetworkParams np;
  np.link_bandwidth_mbps = 0.0;  // disabled
  np.processing_delay_ms = 0.0;
  ExperimentContext ctx(net::make_topology(tp, trng), np, 6);
  GossipProtocol protocol;
  populate(ctx, protocol);
  // Two messages to the same destination at the same instant arrive at the
  // same pair latency (no uplink queueing).
  const double lat = ctx.network.pair_latency(0, 1);
  sim::Message m;
  m.src = 0;
  m.dst = 1;
  m.type = 99;
  m.wire_bytes = 1000;
  const std::optional<sim::SimTime> t1 = ctx.network.send(m);
  const std::optional<sim::SimTime> t2 = ctx.network.send(m);
  ASSERT_TRUE(t1.has_value() && t2.has_value());
  EXPECT_DOUBLE_EQ(*t1, lat);
  EXPECT_DOUBLE_EQ(*t2, lat);
}

}  // namespace
}  // namespace hermes::protocols
