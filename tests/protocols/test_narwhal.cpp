#include "protocols/narwhal.hpp"

#include "protocols/l0.hpp"

#include <gtest/gtest.h>

#include "harness.hpp"

namespace hermes::protocols {
namespace {

using testing::World;

TEST(Narwhal, DirectBroadcastReachesEveryone) {
  NarwhalProtocol protocol;
  World w(30, protocol);
  w.start();
  const Transaction tx = w.send_from(4);
  w.run_ms(2000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
}

TEST(Narwhal, CertificateFormsWithHonestQuorum) {
  NarwhalProtocol protocol;
  World w(30, protocol);
  w.start();
  const Transaction tx = w.send_from(4);
  w.run_ms(2000);
  (void)tx;
  EXPECT_EQ(
      static_cast<const NarwhalNode&>(w.ctx->node(4)).certificates_formed(),
      1u);
}

TEST(Narwhal, CertificateFormsDespiteByzantineAckWithholding) {
  NarwhalProtocol protocol;
  World w(40, protocol);
  w.ctx->assign_behaviors(0.30, Behavior::kDropper);  // below 1/3
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const Transaction tx = inject_tx(*w.ctx, sender);
  w.run_ms(3000);
  (void)tx;
  EXPECT_EQ(static_cast<const NarwhalNode&>(w.ctx->node(sender))
                .certificates_formed(),
            1u);
}

TEST(Narwhal, RepairPullsLostBatches) {
  sim::NetworkParams lossy;
  lossy.drop_probability = 0.15;
  NarwhalProtocol protocol;
  World w(40, protocol, 55, lossy);
  w.start();
  const Transaction tx = w.send_from(2);
  w.run_ms(5000);
  // Direct sends lose ~15%, cert-driven repair should close nearly all.
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.95);
}

TEST(Narwhal, RepairRetriesAfterTimeout) {
  // Heavy loss kills many first-round fetches and their responses; the
  // timeout-driven retry rounds still close (almost) every hole. (Loss
  // beyond ~1/3 starves the ack quorum itself and no certificate forms —
  // a real property of the protocol, not of the repair.)
  sim::NetworkParams lossy;
  lossy.drop_probability = 0.25;
  NarwhalProtocol protocol;
  World w(40, protocol, 66, lossy);
  w.start();
  const Transaction tx = w.send_from(2);
  w.run_ms(8000);
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.9);
}

TEST(Narwhal, LatencyIsBatchDelayPlusFloodSpread) {
  NarwhalProtocol protocol;
  World w(40, protocol);
  w.start();
  const Transaction tx = w.send_from(0);
  w.run_ms(3000);
  const auto lats = w.ctx->tracker.latencies(tx.id);
  ASSERT_FALSE(lats.empty());
  // Flooding over the topology: batch delay + a couple of link hops.
  EXPECT_GT(percentile_of(lats, 50.0), NarwhalParams{}.batch_delay_ms);
  EXPECT_LT(percentile_of(lats, 95.0), 330.0 + NarwhalParams{}.batch_delay_ms);
}

TEST(Narwhal, HighestBandwidthAmongBaselines) {
  // Quorum-sized certificates make Narwhal's per-tx cost grow with n; at
  // n = 100 it already exceeds fanout-bounded gossip and LØ (Figure 3b).
  NarwhalProtocol narwhal;
  GossipProtocol gossip;
  L0Protocol l0;
  World wn(100, narwhal, 3), wg(100, gossip, 3), wl(100, l0, 3);
  wn.start();
  wg.start();
  wl.start();
  wn.send_from(0);
  wg.send_from(0);
  wl.send_from(0);
  wn.run_ms(3000);
  wg.run_ms(3000);
  wl.run_ms(3000);
  EXPECT_GT(wn.ctx->network.total().bytes_sent,
            wg.ctx->network.total().bytes_sent);
  EXPECT_GT(wn.ctx->network.total().bytes_sent,
            wl.ctx->network.total().bytes_sent);
}

TEST(Narwhal, AdversaryFastPathIsPlainBroadcast) {
  NarwhalProtocol protocol;
  World w(30, protocol);
  w.ctx->assign_behaviors(0.2, Behavior::kFrontRunner);
  w.ctx->attack_enabled = true;
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const Transaction victim = inject_tx(*w.ctx, sender);
  w.run_ms(3000);
  ASSERT_EQ(w.ctx->adversarial_of.size(), 1u);
  const std::uint64_t attack_id = w.ctx->adversarial_of[victim.id].id;
  // The adversarial tx also reaches (almost) everyone.
  std::size_t reached = 0;
  for (net::NodeId v = 0; v < 30; ++v) {
    if (w.ctx->tracker.delivered(attack_id, v)) ++reached;
  }
  EXPECT_GT(reached, 25u);
}

}  // namespace
}  // namespace hermes::protocols
