// Parameterized delivery-property sweeps: every protocol must deliver to
// all honest nodes in a clean network, for a grid of network sizes — the
// baseline sanity behind every figure.
#include <gtest/gtest.h>

#include <tuple>

#include "harness.hpp"
#include "hermes/hermes_node.hpp"
#include "protocols/l0.hpp"
#include "protocols/mercury.hpp"
#include "protocols/narwhal.hpp"
#include "protocols/simple_tree.hpp"

namespace hermes::protocols {
namespace {

using testing::World;

enum class Proto { kGossip, kL0, kNarwhal, kMercury, kSimpleTree, kHermes };

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kGossip: return "gossip";
    case Proto::kL0: return "l0";
    case Proto::kNarwhal: return "narwhal";
    case Proto::kMercury: return "mercury";
    case Proto::kSimpleTree: return "simpletree";
    case Proto::kHermes: return "hermes";
  }
  return "?";
}

std::unique_ptr<Protocol> make_protocol(Proto p) {
  switch (p) {
    case Proto::kGossip: return std::make_unique<GossipProtocol>();
    case Proto::kL0: return std::make_unique<L0Protocol>();
    case Proto::kNarwhal: return std::make_unique<NarwhalProtocol>();
    case Proto::kMercury: return std::make_unique<MercuryProtocol>();
    case Proto::kSimpleTree: return std::make_unique<SimpleTreeProtocol>();
    case Proto::kHermes: {
      hermes_proto::HermesConfig config;
      config.f = 1;
      config.k = 3;
      config.builder.annealing.initial_temperature = 5.0;
      config.builder.annealing.min_temperature = 1.0;
      config.builder.annealing.cooling_rate = 0.8;
      config.builder.annealing.moves_per_temperature = 4;
      return std::make_unique<hermes_proto::HermesProtocol>(config);
    }
  }
  return nullptr;
}

using Params = std::tuple<Proto, std::size_t /*n*/>;

class DeliveryProperty : public ::testing::TestWithParam<Params> {};

TEST_P(DeliveryProperty, CleanNetworkFullCoverage) {
  const auto [proto, n] = GetParam();
  auto protocol = make_protocol(proto);
  World w(n, *protocol, 4000 + n);
  w.start();
  const Transaction tx = w.send_from(static_cast<net::NodeId>(n / 2));
  w.run_ms(10000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0)
      << proto_name(proto) << " n=" << n;
}

TEST_P(DeliveryProperty, SequentialSendersAllDeliver) {
  const auto [proto, n] = GetParam();
  auto protocol = make_protocol(proto);
  World w(n, *protocol, 5000 + n);
  w.start();
  std::vector<Transaction> txs;
  for (net::NodeId s : {net::NodeId{0}, static_cast<net::NodeId>(n - 1)}) {
    txs.push_back(w.send_from(s));
    w.run_ms(500);
  }
  w.run_ms(10000);
  for (const auto& tx : txs) {
    EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0)
        << proto_name(proto) << " n=" << n << " tx=" << tx.id;
  }
}

std::string delivery_name(const ::testing::TestParamInfo<Params>& info) {
  return std::string(proto_name(std::get<0>(info.param))) + "_n" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, DeliveryProperty,
    ::testing::Combine(::testing::Values(Proto::kGossip, Proto::kL0,
                                         Proto::kNarwhal, Proto::kMercury,
                                         Proto::kSimpleTree, Proto::kHermes),
                       ::testing::Values(std::size_t{25}, std::size_t{60})),
    delivery_name);

}  // namespace
}  // namespace hermes::protocols
