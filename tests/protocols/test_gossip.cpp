#include "protocols/gossip.hpp"

#include <gtest/gtest.h>

#include "harness.hpp"

namespace hermes::protocols {
namespace {

using testing::World;

TEST(Gossip, ReachesAllHonestNodes) {
  GossipProtocol protocol;
  World w(40, protocol);
  w.start();
  const Transaction tx = w.send_from(3);
  w.run_ms(3000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
}

TEST(Gossip, LatencyIsPositiveAndBounded) {
  GossipProtocol protocol;
  World w(40, protocol);
  w.start();
  const Transaction tx = w.send_from(0);
  w.run_ms(3000);
  const auto lats = w.ctx->tracker.latencies(tx.id);
  ASSERT_FALSE(lats.empty());
  std::size_t positive = 0;
  for (double l : lats) {
    // The origin self-delivers at creation time (latency 0); every other
    // node pays at least one link.
    EXPECT_GE(l, 0.0);
    EXPECT_LT(l, 3000.0);
    if (l > 0.0) ++positive;
  }
  EXPECT_GE(positive, lats.size() - 1);
}

TEST(Gossip, MultipleSendersAllDeliver) {
  GossipProtocol protocol;
  World w(30, protocol);
  w.start();
  std::vector<Transaction> txs;
  for (net::NodeId s : {0u, 7u, 13u, 29u}) txs.push_back(w.send_from(s));
  w.run_ms(3000);
  for (const auto& tx : txs) {
    EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0) << tx.id;
  }
}

TEST(Gossip, DroppersReduceButDoNotStopPropagation) {
  GossipParams params;
  params.fanout = 4;
  GossipProtocol protocol(params);
  World w(60, protocol);
  w.ctx->assign_behaviors(0.3, Behavior::kDropper);
  w.start();
  net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const Transaction tx = inject_tx(*w.ctx, sender);
  w.run_ms(4000);
  const double cov = honest_coverage(*w.ctx, tx);
  EXPECT_GT(cov, 0.5);  // gossip redundancy survives 30% droppers
}

TEST(Gossip, FrontRunnerLaunchesAttackOnObservation) {
  GossipProtocol protocol;
  World w(40, protocol);
  w.ctx->assign_behaviors(0.25, Behavior::kFrontRunner);
  w.ctx->attack_enabled = true;
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const Transaction victim = inject_tx(*w.ctx, sender);
  w.run_ms(4000);
  ASSERT_EQ(w.ctx->adversarial_of.count(victim.id), 1u);
  Rng judge(1);
  const AttackOutcome outcome = front_run_outcome(*w.ctx, victim, judge);
  EXPECT_NE(outcome, AttackOutcome::kNoAttack);
}

TEST(Gossip, NoAttackWithoutFrontRunners) {
  GossipProtocol protocol;
  World w(30, protocol);
  w.ctx->attack_enabled = true;  // enabled but nobody is malicious
  w.start();
  const Transaction victim = w.send_from(2);
  w.run_ms(2000);
  Rng judge(2);
  EXPECT_EQ(front_run_outcome(*w.ctx, victim, judge), AttackOutcome::kNoAttack);
}

TEST(Gossip, OnlyFirstObserverAttacks) {
  GossipProtocol protocol;
  World w(40, protocol);
  w.ctx->assign_behaviors(0.4, Behavior::kFrontRunner);
  w.ctx->attack_enabled = true;
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const Transaction victim = inject_tx(*w.ctx, sender);
  w.run_ms(4000);
  // Exactly one adversarial tx per victim despite many front-runners.
  EXPECT_EQ(w.ctx->adversarial_of.size(), 1u);
}

TEST(Gossip, BandwidthScalesWithFanout) {
  GossipParams small;
  small.fanout = 2;
  GossipParams large;
  large.fanout = 10;
  GossipProtocol p_small(small), p_large(large);
  World w1(40, p_small), w2(40, p_large);
  w1.start();
  w2.start();
  w1.send_from(0);
  w2.send_from(0);
  w1.run_ms(3000);
  w2.run_ms(3000);
  EXPECT_LT(w1.ctx->network.total().bytes_sent,
            w2.ctx->network.total().bytes_sent);
}

TEST(GossipLazy, AnnouncementsStillReachEveryone) {
  GossipParams params;
  params.fanout = 2;          // thin eager push
  params.lazy_announce = true;  // the rest learn via IHAVE/IWANT
  GossipProtocol protocol(params);
  World w(40, protocol);
  w.start();
  const Transaction tx = w.send_from(3);
  w.run_ms(5000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
}

TEST(GossipLazy, CheaperThanEagerFullFanout) {
  // Same effective reach, but announcements replace most payload pushes.
  GossipParams eager;
  eager.fanout = 8;
  GossipParams lazy;
  lazy.fanout = 2;
  lazy.lazy_announce = true;
  GossipProtocol p_eager(eager), p_lazy(lazy);
  World we(40, p_eager, 4), wl(40, p_lazy, 4);
  we.start();
  wl.start();
  we.send_from(0);
  wl.send_from(0);
  we.run_ms(5000);
  wl.run_ms(5000);
  EXPECT_LT(wl.ctx->network.total().bytes_sent,
            we.ctx->network.total().bytes_sent);
}

TEST(GossipLazy, HolesPullOnlyWhatTheyMiss) {
  GossipParams params;
  params.fanout = 2;
  params.lazy_announce = true;
  GossipProtocol protocol(params);
  World w(30, protocol, 8);
  w.start();
  const Transaction tx = w.send_from(1);
  w.run_ms(5000);
  // A node never requests a tx it already holds: total IWANTs <= nodes-1.
  // (Indirect check: total messages stay well below eager flooding.)
  EXPECT_LT(w.ctx->network.total().messages_sent, 30u * 30u);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
}

TEST(Gossip, CrashedNodesAreNotDelivered) {
  GossipProtocol protocol;
  World w(30, protocol);
  w.start();
  w.ctx->network.set_crashed(5, true);
  const Transaction tx = w.send_from(0);
  w.run_ms(3000);
  EXPECT_FALSE(w.ctx->tracker.delivered(tx.id, 5));
}

}  // namespace
}  // namespace hermes::protocols
