#include "protocols/mercury.hpp"

#include "protocols/l0.hpp"

#include <gtest/gtest.h>

#include "harness.hpp"

namespace hermes::protocols {
namespace {

using testing::World;

net::Topology test_topology(std::size_t n = 48) {
  net::TopologyParams tp;
  tp.node_count = n;
  tp.min_degree = 5;
  Rng rng(77);
  return net::make_topology(tp, rng);
}

TEST(MercuryDirectory, RespectsDegreeBounds) {
  const net::Topology topo = test_topology(64);
  MercuryParams params;
  Rng rng(1);
  const MercuryDirectory dir = build_mercury_directory(topo, params, rng);
  for (net::NodeId v = 0; v < 64; ++v) {
    EXPECT_LE(dir.intra_peers[v].size(), params.intra_degree);
    EXPECT_LE(dir.intra_peers[v].size() + dir.gateways[v].size(),
              params.max_degree);
  }
}

TEST(MercuryDirectory, IntraPeersShareCluster) {
  const net::Topology topo = test_topology(64);
  MercuryParams params;
  Rng rng(2);
  const MercuryDirectory dir = build_mercury_directory(topo, params, rng);
  for (net::NodeId v = 0; v < 64; ++v) {
    for (net::NodeId p : dir.intra_peers[v]) {
      EXPECT_EQ(dir.cluster_of[v], dir.cluster_of[p]);
      EXPECT_NE(p, v);
    }
  }
}

TEST(MercuryDirectory, GatewaysCoverDistinctForeignClusters) {
  const net::Topology topo = test_topology(64);
  MercuryParams params;
  Rng rng(3);
  const MercuryDirectory dir = build_mercury_directory(topo, params, rng);
  for (net::NodeId v = 0; v < 64; ++v) {
    std::set<std::size_t> clusters;
    for (net::NodeId g : dir.gateways[v]) {
      EXPECT_NE(dir.cluster_of[g], dir.cluster_of[v]);
      EXPECT_TRUE(clusters.insert(dir.cluster_of[g]).second)
          << "duplicate gateway cluster";
    }
  }
}

TEST(Mercury, ReachesAllHonestNodes) {
  MercuryProtocol protocol;
  World w(48, protocol);
  w.start();
  const Transaction tx = w.send_from(5);
  w.run_ms(3000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
}

TEST(Mercury, LowLatencyTwoHopStructure) {
  MercuryProtocol protocol;
  World w(48, protocol);
  w.start();
  const Transaction tx = w.send_from(0);
  w.run_ms(3000);
  const auto lats = w.ctx->tracker.latencies(tx.id);
  ASSERT_FALSE(lats.empty());
  // Gateway + intra hop: p95 within a few link latencies.
  EXPECT_LT(percentile_of(lats, 95.0), 400.0);
}

TEST(Mercury, ByzantineGatewaysCanStarveClusters) {
  // With many droppers the per-sender gateway chokepoints cut off whole
  // clusters — Mercury's robustness weakness (Figure 5b).
  MercuryProtocol protocol;
  World w(64, protocol, 13);
  w.ctx->assign_behaviors(0.33, Behavior::kDropper);
  w.start();
  double worst = 1.0;
  for (int i = 0; i < 5; ++i) {
    const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
    const Transaction tx = inject_tx(*w.ctx, sender);
    w.run_ms(2500);
    worst = std::min(worst, honest_coverage(*w.ctx, tx));
  }
  EXPECT_LT(worst, 0.999);  // at least one run leaves honest nodes dark
}

TEST(Mercury, FasterThanL0OnAverage) {
  // Figure 3a ordering at test scale: Mercury's clustered two-hop
  // structure beats LØ's low-fanout gossip + reconciliation. (Beating
  // fanout-8 gossip requires network sizes where gossip needs more hops
  // than the cluster structure — covered by the Fig. 3a bench at scale.)
  MercuryProtocol mercury;
  L0Protocol l0;
  World wm(48, mercury, 5), wl(48, l0, 5);
  wm.start();
  wl.start();
  const Transaction tm = wm.send_from(0);
  const Transaction tl = wl.send_from(0);
  wm.run_ms(8000);
  wl.run_ms(8000);
  const auto lm = wm.ctx->tracker.latencies(tm.id);
  const auto ll = wl.ctx->tracker.latencies(tl.id);
  ASSERT_FALSE(lm.empty());
  ASSERT_FALSE(ll.empty());
  EXPECT_LT(mean_of(lm), mean_of(ll));
}

}  // namespace
}  // namespace hermes::protocols
