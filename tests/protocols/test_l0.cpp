#include "protocols/l0.hpp"

#include <gtest/gtest.h>

#include "harness.hpp"

namespace hermes::protocols {
namespace {

using testing::World;

TEST(L0, ReachesAllHonestNodesEventually) {
  L0Protocol protocol;
  World w(40, protocol);
  w.start();
  const Transaction tx = w.send_from(1);
  w.run_ms(6000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
}

TEST(L0, ReconciliationRepairsLossyLinks) {
  // With 20% message loss, low-fanout gossip alone leaves holes; the
  // periodic digest exchange must close them.
  sim::NetworkParams lossy;
  lossy.drop_probability = 0.2;
  L0Params params;
  params.tx_fanout = 2;
  L0Protocol protocol(params);
  World w(40, protocol, 99, lossy);
  w.start();
  const Transaction tx = w.send_from(1);
  w.run_ms(15000);
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.95);
}

TEST(L0, ReconciliationRoundsHappen) {
  L0Protocol protocol;
  World w(20, protocol);
  w.start();
  w.send_from(0);
  w.run_ms(3000);
  std::size_t total_rounds = 0;
  for (net::NodeId v = 0; v < 20; ++v) {
    total_rounds +=
        static_cast<const L0Node&>(w.ctx->node(v)).reconciliations_started();
  }
  // Lazy reconciliation: at least one eager round per node while the tx
  // spreads, plus slow keepalives.
  EXPECT_GT(total_rounds, 15u);
}

TEST(L0, CommitmentsPropagate) {
  L0Protocol protocol;
  World w(30, protocol);
  w.start();
  const Transaction tx = w.send_from(2);
  w.run_ms(4000);
  // A majority of nodes should hold the commitment for the tx hash.
  std::size_t holders = 0;
  for (net::NodeId v = 0; v < 30; ++v) {
    if (w.ctx->node(v).pool().has_commitment(tx.hash())) ++holders;
  }
  EXPECT_GT(holders, 15u);
}

TEST(L0, SlowerThanPlainGossipOnAverage) {
  // LØ's low fanout trades latency for bandwidth (Figure 3a vs 3b).
  GossipParams gp;
  gp.fanout = 8;
  GossipProtocol gossip(gp);
  L0Protocol l0;
  World wg(50, gossip, 7), wl(50, l0, 7);
  wg.start();
  wl.start();
  const Transaction tg = wg.send_from(0);
  const Transaction tl = wl.send_from(0);
  wg.run_ms(10000);
  wl.run_ms(10000);
  const auto lg = wg.ctx->tracker.latencies(tg.id);
  const auto ll = wl.ctx->tracker.latencies(tl.id);
  ASSERT_FALSE(lg.empty());
  ASSERT_FALSE(ll.empty());
  EXPECT_LT(mean_of(lg), mean_of(ll));
}

TEST(L0, LowerBandwidthThanPlainGossip) {
  GossipProtocol gossip;
  L0Protocol l0;
  World wg(50, gossip, 8), wl(50, l0, 8);
  wg.start();
  wl.start();
  wg.send_from(0);
  wl.send_from(0);
  // Compare over the same horizon, before reconciliation dominates.
  wg.run_ms(2000);
  wl.run_ms(2000);
  EXPECT_LT(wl.ctx->network.total().bytes_sent,
            wg.ctx->network.total().bytes_sent);
}

TEST(L0, DroppersDegradeCoverageWithoutRepairServing) {
  L0Params params;
  params.tx_fanout = 2;
  L0Protocol protocol(params);
  World w(50, protocol, 11);
  w.ctx->assign_behaviors(0.3, Behavior::kDropper);
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const Transaction tx = inject_tx(*w.ctx, sender);
  w.run_ms(8000);
  const double cov = honest_coverage(*w.ctx, tx);
  EXPECT_GT(cov, 0.6);  // reconciliation among honest nodes still works
}

}  // namespace
}  // namespace hermes::protocols
