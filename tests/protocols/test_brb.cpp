#include "protocols/brb.hpp"

#include <gtest/gtest.h>

#include "harness.hpp"

namespace hermes::protocols {
namespace {

using testing::World;

TEST(Brb, DeliversToAllNodes) {
  BrbProtocol protocol;
  World w(25, protocol);
  w.start();
  const Transaction tx = w.send_from(4);
  w.run_ms(3000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, tx), 1.0);
  for (net::NodeId v = 0; v < 25; ++v) {
    EXPECT_TRUE(static_cast<const BrbNode&>(w.ctx->node(v)).brb_delivered(tx.id))
        << v;
  }
}

TEST(Brb, QuadraticMessageComplexity) {
  BrbProtocol protocol;
  World w(30, protocol);
  w.start();
  w.send_from(0);
  w.run_ms(3000);
  // Send n + Echo n^2 + Ready n^2 (+ a few fetches): clearly super-linear.
  EXPECT_GT(w.ctx->network.total().messages_sent, 30u * 30u);
}

TEST(Brb, ToleratesByzantineThird) {
  BrbProtocol protocol;
  World w(31, protocol, 3);
  w.ctx->assign_behaviors(0.32, Behavior::kDropper);
  w.start();
  const net::NodeId sender = w.ctx->random_honest(w.ctx->rng);
  const Transaction tx = inject_tx(*w.ctx, sender);
  w.run_ms(4000);
  // Totality: every honest node Bracha-delivers despite f droppers.
  for (net::NodeId v = 0; v < 31; ++v) {
    if (!w.ctx->is_honest(v)) continue;
    EXPECT_TRUE(static_cast<const BrbNode&>(w.ctx->node(v)).brb_delivered(tx.id))
        << v;
  }
}

TEST(Brb, PayloadPullRepairsLossyDirectSends) {
  sim::NetworkParams lossy;
  lossy.drop_probability = 0.2;
  BrbProtocol protocol;
  World w(25, protocol, 9, lossy);
  w.start();
  const Transaction tx = w.send_from(2);
  w.run_ms(6000);
  // Votes are quadratic and redundant; payload holes are pulled from
  // echoing nodes, so coverage stays high despite 20% loss.
  EXPECT_GT(honest_coverage(*w.ctx, tx), 0.9);
}

TEST(Brb, MultipleSendersConcurrent) {
  BrbProtocol protocol;
  World w(20, protocol);
  w.start();
  const Transaction a = w.send_from(1);
  const Transaction b = w.send_from(7);
  w.run_ms(4000);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, a), 1.0);
  EXPECT_DOUBLE_EQ(honest_coverage(*w.ctx, b), 1.0);
}

}  // namespace
}  // namespace hermes::protocols
