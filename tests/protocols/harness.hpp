// Shared fixture for protocol integration tests. The implementation lives
// in src/fuzz/world.hpp so the scenario fuzzer and the protocol tests run
// experiments through one harness; this header only re-exports the name.
#pragma once

#include "fuzz/world.hpp"

namespace hermes::protocols::testing {

using World = ::hermes::fuzz::World;

}  // namespace hermes::protocols::testing
