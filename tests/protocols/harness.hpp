// Shared fixture for protocol integration tests: builds a small world,
// populates it with a protocol, and runs the simulation to a deadline.
#pragma once

#include <memory>

#include "protocols/base.hpp"

namespace hermes::protocols::testing {

struct World {
  World(std::size_t n, Protocol& protocol, std::uint64_t seed = 4242,
        sim::NetworkParams net_params = {}) {
    net::TopologyParams tp;
    tp.node_count = n;
    tp.min_degree = 5;
    tp.connectivity = 2;
    Rng trng(seed);
    ctx = std::make_unique<ExperimentContext>(net::make_topology(tp, trng),
                                              net_params, seed);
    protocol_ = &protocol;
  }

  // Call after optional assign_behaviors.
  void start() { populate(*ctx, *protocol_); }

  Transaction send_from(net::NodeId sender) { return inject_tx(*ctx, sender); }

  void run_ms(double ms) { ctx->engine.run_until(ctx->engine.now() + ms); }

  std::unique_ptr<ExperimentContext> ctx;
  Protocol* protocol_ = nullptr;
};

}  // namespace hermes::protocols::testing
