#include "support/bytes.hpp"

#include <gtest/gtest.h>

namespace hermes {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes b{0x00, 0x01, 0xab, 0xff, 0x7f};
  const std::string hex = hex_encode(b);
  EXPECT_EQ(hex, "0001abff7f");
  bool ok = false;
  EXPECT_EQ(hex_decode(hex, &ok), b);
  EXPECT_TRUE(ok);
}

TEST(Bytes, HexDecodeUppercase) {
  bool ok = false;
  EXPECT_EQ(hex_decode("ABCDEF", &ok), (Bytes{0xab, 0xcd, 0xef}));
  EXPECT_TRUE(ok);
}

TEST(Bytes, HexDecodeRejectsOddLength) {
  bool ok = true;
  hex_decode("abc", &ok);
  EXPECT_FALSE(ok);
}

TEST(Bytes, HexDecodeRejectsNonHex) {
  bool ok = true;
  hex_decode("zz", &ok);
  EXPECT_FALSE(ok);
}

TEST(Bytes, U32BigEndianRoundTrip) {
  Bytes out;
  put_u32_be(out, 0xdeadbeef);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0xde);
  EXPECT_EQ(get_u32_be(out, 0), 0xdeadbeefu);
}

TEST(Bytes, U64BigEndianRoundTrip) {
  Bytes out;
  put_u64_be(out, 0x0123456789abcdefULL);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(get_u64_be(out, 0), 0x0123456789abcdefULL);
}

TEST(Bytes, VarintRoundTripValues) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL,
                          0xffffffffULL, 0xffffffffffffffffULL}) {
    Bytes out;
    put_varint(out, v);
    std::size_t off = 0;
    std::uint64_t decoded = 0;
    ASSERT_TRUE(get_varint(out, &off, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(off, out.size());
  }
}

TEST(Bytes, VarintSingleByteForSmall) {
  Bytes out;
  put_varint(out, 127);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Bytes, VarintDetectsTruncation) {
  Bytes out;
  put_varint(out, 1ULL << 40);
  out.pop_back();
  std::size_t off = 0;
  std::uint64_t decoded = 0;
  EXPECT_FALSE(get_varint(out, &off, &decoded));
}

TEST(Bytes, StringRoundTrip) {
  const std::string s = "hermes";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, AppendConcatenates) {
  Bytes a{1, 2};
  const Bytes b{3, 4};
  append(a, b);
  EXPECT_EQ(a, (Bytes{1, 2, 3, 4}));
}

}  // namespace
}  // namespace hermes
