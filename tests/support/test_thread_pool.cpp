#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace hermes {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroWorkersRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // single-threaded: safe
  });
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);  // and in order
}

TEST(ThreadPool, EmptyBatchIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 800u);
}

TEST(ThreadPool, BatchLargerThanPool) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 1000u * 1001u / 2);
}

}  // namespace
}  // namespace hermes
