#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace hermes {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.fork(1);
  // Child stream should not replay the parent stream.
  Rng parent2(7);
  (void)parent2.fork(1);
  std::set<std::uint64_t> child_vals;
  for (int i = 0; i < 50; ++i) child_vals.insert(child.next_u64());
  int overlap = 0;
  for (int i = 0; i < 50; ++i) {
    if (child_vals.count(parent2.next_u64())) ++overlap;
  }
  EXPECT_LE(overlap, 1);
}

TEST(Rng, UniformBoundRespected) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(6);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(90.0, std::sqrt(20.0));
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 90.0, 0.2);
  EXPECT_NEAR(var, 20.0, 1.0);
}

TEST(Rng, GammaMoments) {
  // Gamma(alpha, theta): mean = alpha*theta, var = alpha*theta^2.
  Rng rng(9);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(2.5, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 7.5, 0.15);
  EXPECT_NEAR(var, 22.5, 1.5);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(10);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(0.5, 2.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Rng, InverseGammaMeanMatchesPaperParams) {
  // The paper's intra-region model: inv-gamma alpha=2.5, beta=14.
  // Mean = beta / (alpha - 1) = 9.333 ms.
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.inverse_gamma(2.5, 14.0);
  EXPECT_NEAR(sum / n, 14.0 / 1.5, 0.25);
}

TEST(Rng, ExponentialMean) {
  Rng rng(12);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(14);
  const auto idx = rng.sample_indices(100, 30);
  ASSERT_EQ(idx.size(), 30u);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (std::size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(15);
  const auto idx = rng.sample_indices(10, 10);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 10u);
}

}  // namespace
}  // namespace hermes
