#include "support/stats.hpp"

#include <gtest/gtest.h>

namespace hermes {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean_of(xs), 5.0);
  EXPECT_DOUBLE_EQ(stddev_of(xs), 2.0);
}

TEST(Stats, EmptyVectorSafe) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of({}), 0.0);
  EXPECT_DOUBLE_EQ(percentile_of({}, 50), 0.0);
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50), 25.0);
}

TEST(Stats, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(percentile_of({7.0}, 95), 7.0);
}

TEST(Stats, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile_of({40, 10, 30, 20}, 50), 25.0);
}

TEST(Stats, SummaryFields) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs{3.5, -1.0, 2.25, 8.0, 0.0, 4.5};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean_of(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev_of(xs), 1e-12);
}

TEST(Stats, RunningStatsEmpty) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

}  // namespace
}  // namespace hermes
