// Front-running economics under sustained load.
//
// Drives every protocol (HERMES, LØ, Narwhal, Mercury) through the
// IDENTICAL seeded Poisson workload — same topology, same behavior
// assignment, same arrival schedule, same fee bids — under fee-priority
// mempool pressure, twice per protocol:
//
//   poisson      attack machinery off: baseline throughput / mempool
//                pressure / propagation latency under load
//   adversarial  front-runner nodes race every victim send they observe;
//                every attack is judged against ALL honest proposers and
//                priced with the fee model (workload/economics.hpp),
//                bucketed by the attacker's hop distance from the victim
//
// Prints a plain table and, with --json PATH, a JSON report consumed by
// tools/run_benches.sh to produce BENCH_workload.json.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "bench/common.hpp"
#include "workload/driver.hpp"
#include "workload/economics.hpp"

namespace {

using namespace hermes;

struct WorkloadOptions {
  std::size_t nodes = 120;
  std::uint64_t seed = 20250705;
  double rate_hz = 40.0;
  double duration_ms = 1500.0;
  double drain_ms = 6000.0;
  double batch_window_ms = 0.0;
  std::size_t capacity = 48;
  double frontrunner_fraction = 0.15;
  // --signer real runs HERMES's TRS committee on genuine Shoup threshold
  // RSA (--rsa-bits key size) instead of the HMAC simulation scheme.
  bool real_signer = false;
  std::size_t rsa_bits = 1024;
  std::string json_path;

  static WorkloadOptions parse(int argc, char** argv) {
    WorkloadOptions opt;
    for (int i = 1; i < argc; ++i) {
      auto grab = [&](const char* flag) -> const char* {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
        return nullptr;
      };
      if (const char* v = grab("--nodes")) opt.nodes = std::stoul(v);
      else if (const char* v2 = grab("--seed")) opt.seed = std::stoull(v2);
      else if (const char* v3 = grab("--rate")) opt.rate_hz = std::stod(v3);
      else if (const char* v4 = grab("--duration")) opt.duration_ms = std::stod(v4);
      else if (const char* v5 = grab("--capacity")) opt.capacity = std::stoul(v5);
      else if (const char* v6 = grab("--frac")) opt.frontrunner_fraction = std::stod(v6);
      else if (const char* v7 = grab("--batch-window")) opt.batch_window_ms = std::stod(v7);
      else if (const char* v8 = grab("--json")) opt.json_path = v8;
      else if (const char* v9 = grab("--signer")) opt.real_signer = std::strcmp(v9, "real") == 0;
      else if (const char* v10 = grab("--rsa-bits")) opt.rsa_bits = std::stoul(v10);
    }
    return opt;
  }
};

struct LoadStats {
  std::size_t txs = 0;
  std::size_t batches = 0;
  double mean_coverage = 0.0;
  double mean_latency_ms = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  // Mempool pressure aggregated over honest nodes.
  std::size_t admitted = 0;
  std::size_t evicted = 0;
  std::size_t rejected = 0;
  std::size_t committed = 0;
};

struct ProtocolRun {
  LoadStats load;
  workload::EconomicsReport economics;  // adversarial run only
};

struct Entry {
  const char* name;
  std::function<std::unique_ptr<protocols::Protocol>()> make;
};

LoadStats collect_load(const protocols::ExperimentContext& ctx,
                       const workload::ScheduleResult& sched) {
  LoadStats out;
  out.txs = sched.txs.size();
  out.batches = sched.batches;
  RunningStats lat;
  for (const auto& tx : sched.txs) {
    out.mean_coverage += protocols::honest_coverage(ctx, tx);
    for (double l : ctx.tracker.latencies(tx.id)) lat.add(l);
  }
  if (!sched.txs.empty()) {
    out.mean_coverage /= static_cast<double>(sched.txs.size());
  }
  out.mean_latency_ms = lat.mean();
  out.messages = ctx.network.total().messages_sent;
  out.bytes = ctx.network.total().bytes_sent;
  for (net::NodeId v = 0; v < ctx.node_count(); ++v) {
    if (!ctx.is_honest(v)) continue;
    const auto& pool = ctx.nodes[v]->pool();
    out.admitted += pool.admitted_total();
    out.evicted += pool.evicted_total();
    out.rejected += pool.rejected_total();
    out.committed += pool.committed_total();
  }
  return out;
}

ProtocolRun run_protocol(const Entry& entry, const WorkloadOptions& opt,
                         bool adversarial) {
  auto protocol = entry.make();
  protocols::ExperimentContext ctx(
      bench::make_bench_topology(opt.nodes, opt.seed), {},
      opt.seed ^ 0x5eedULL);
  ctx.assign_behaviors(opt.frontrunner_fraction,
                       protocols::Behavior::kFrontRunner);
  // Capacity is applied at node construction, so set it before populate.
  ctx.mempool_capacity = opt.capacity;
  protocols::populate(ctx, *protocol);

  workload::WorkloadParams wp;
  wp.kind = adversarial ? workload::ArrivalKind::kAdversarial
                        : workload::ArrivalKind::kPoisson;
  wp.duration_ms = opt.duration_ms;
  wp.rate_hz = opt.rate_hz;
  wp.seed = opt.seed;
  const workload::ScheduleResult sched =
      workload::schedule_workload(ctx, wp, opt.batch_window_ms);
  ctx.engine.run_until(sched.horizon_ms + opt.drain_ms);

  ProtocolRun run;
  run.load = collect_load(ctx, sched);
  if (adversarial) run.economics = workload::analyze_attacks(ctx, sched.txs);
  return run;
}

void print_json(std::FILE* f, const WorkloadOptions& opt,
                std::span<const Entry> entries,
                std::span<const ProtocolRun> poisson,
                std::span<const ProtocolRun> adversarial) {
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"params\": {\"nodes\": %zu, \"seed\": %" PRIu64
               ", \"rate_hz\": %.3f, \"duration_ms\": %.1f, \"capacity\": "
               "%zu, \"frontrunner_fraction\": %.3f, \"signer\": \"%s\"},\n",
               opt.nodes, opt.seed, opt.rate_hz, opt.duration_ms, opt.capacity,
               opt.frontrunner_fraction, opt.real_signer ? "real" : "sim");
  std::fprintf(f, "  \"protocols\": {\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const LoadStats& p = poisson[i].load;
    const LoadStats& a = adversarial[i].load;
    const workload::EconomicsReport& eco = adversarial[i].economics;
    std::fprintf(f, "    \"%s\": {\n", entries[i].name);
    std::fprintf(f,
                 "      \"poisson\": {\"txs\": %zu, \"coverage\": %.4f, "
                 "\"mean_latency_ms\": %.3f, \"messages\": %" PRIu64
                 ", \"bytes\": %" PRIu64
                 ", \"admitted\": %zu, \"evicted\": %zu, \"rejected\": %zu, "
                 "\"committed\": %zu},\n",
                 p.txs, p.mean_coverage, p.mean_latency_ms, p.messages,
                 p.bytes, p.admitted, p.evicted, p.rejected, p.committed);
    std::fprintf(f,
                 "      \"adversarial\": {\"txs\": %zu, \"coverage\": %.4f, "
                 "\"evicted\": %zu, \"attacked\": %zu, \"insertions\": %zu, "
                 "\"sandwiches\": %zu, \"insertion_rate\": %.4f, "
                 "\"sandwich_rate\": %.4f, \"total_profit\": %" PRId64
                 ", \"mean_profit\": %.3f,\n",
                 a.txs, a.mean_coverage, a.evicted, eco.attacked,
                 eco.insertions, eco.sandwiches, eco.insertion_rate(),
                 eco.sandwich_rate(), eco.total_profit, eco.mean_profit());
    std::fprintf(f, "        \"profit_by_distance\": [");
    for (std::size_t d = 0; d < eco.by_distance.size(); ++d) {
      const workload::PositionBucket& b = eco.by_distance[d];
      std::fprintf(f,
                   "%s{\"hops\": %zu, \"attacks\": %zu, \"successes\": %zu, "
                   "\"profit\": %" PRId64 "}",
                   d == 0 ? "" : ", ", d, b.attacks, b.successes, b.profit);
    }
    std::fprintf(f, "]}\n");
    std::fprintf(f, "    }%s\n", i + 1 == entries.size() ? "" : ",");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const WorkloadOptions opt = WorkloadOptions::parse(argc, argv);

  const Entry entries[] = {
      {"hermes",
       [&opt] {
         hermes_proto::HermesConfig cfg = bench::bench_hermes_config();
         cfg.use_real_threshold_crypto = opt.real_signer;
         cfg.real_threshold_rsa_bits = opt.rsa_bits;
         return std::make_unique<hermes_proto::HermesProtocol>(cfg);
       }},
      {"l0", [] { return std::make_unique<protocols::L0Protocol>(); }},
      {"narwhal", [] { return std::make_unique<protocols::NarwhalProtocol>(); }},
      {"mercury", [] { return std::make_unique<protocols::MercuryProtocol>(); }},
  };
  constexpr std::size_t kProtocols = std::size(entries);

  std::printf(
      "Workload economics — N=%zu, %.0f Hz Poisson x %.0f ms, mempool "
      "capacity %zu, %.0f%% front-runners, seed %" PRIu64 ", signer %s\n",
      opt.nodes, opt.rate_hz, opt.duration_ms, opt.capacity,
      opt.frontrunner_fraction * 100.0, opt.seed,
      opt.real_signer ? "real" : "sim");

  std::vector<ProtocolRun> poisson(kProtocols);
  std::vector<ProtocolRun> adversarial(kProtocols);

  std::printf("%-10s %6s %8s %9s %9s %9s\n", "poisson", "txs", "coverage",
              "lat(ms)", "evicted", "rejected");
  for (std::size_t i = 0; i < kProtocols; ++i) {
    poisson[i] = run_protocol(entries[i], opt, /*adversarial=*/false);
    const LoadStats& s = poisson[i].load;
    std::printf("%-10s %6zu %7.1f%% %9.2f %9zu %9zu\n", entries[i].name,
                s.txs, s.mean_coverage * 100.0, s.mean_latency_ms, s.evicted,
                s.rejected);
  }

  std::printf("%-10s %8s %9s %9s %11s %11s\n", "attack", "attacked",
              "insert%", "sandwich%", "profit/atk", "total");
  for (std::size_t i = 0; i < kProtocols; ++i) {
    adversarial[i] = run_protocol(entries[i], opt, /*adversarial=*/true);
    const workload::EconomicsReport& eco = adversarial[i].economics;
    std::printf("%-10s %8zu %8.1f%% %8.1f%% %11.1f %11" PRId64 "\n",
                entries[i].name, eco.attacked, eco.insertion_rate() * 100.0,
                eco.sandwich_rate() * 100.0, eco.mean_profit(),
                eco.total_profit);
  }

  std::printf("profit by attacker hop distance (insert-success/attacks)\n");
  std::printf("%-10s", "");
  for (std::size_t d = 0; d <= workload::kMaxDistanceBucket; ++d) {
    std::printf(d == workload::kMaxDistanceBucket ? " %8zu+" : " %9zu", d);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < kProtocols; ++i) {
    std::printf("%-10s", entries[i].name);
    for (const workload::PositionBucket& b : adversarial[i].economics.by_distance) {
      if (b.attacks == 0) {
        std::printf(" %9s", "-");
      } else {
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%zu/%zu", b.successes, b.attacks);
        std::printf(" %9s", cell);
      }
    }
    std::printf("\n");
  }

  if (!opt.json_path.empty()) {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opt.json_path.c_str());
      return 1;
    }
    print_json(f, opt, entries, poisson, adversarial);
    std::fclose(f);
  }
  return 0;
}
