// Figure 5a: front-running success rate as a function of the fraction of
// malicious nodes (10%..33%), for HERMES, LØ, Narwhal, Mercury.
//
// Paper: HERMES 2% -> 5.9%, LØ 5% -> 19%, Narwhal 10% -> 51%, Mercury
// 25% -> 70%. Expected shape here: same ordering at every fraction, with
// HERMES flattest.
#include <cstdio>
#include <functional>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using bench::RunSpec;
  auto opt = bench::Options::parse(argc, argv, /*default_nodes=*/150);
  // Success rates need more victims than the latency benches need txs.
  const std::size_t victims_per_rep = std::max<std::size_t>(opt.txs, 8);

  std::printf(
      "Figure 5a — front-running success rate (N=%zu, %zu reps x %zu victims)\n",
      opt.nodes, opt.reps, victims_per_rep);
  std::printf("%-10s", "malicious");
  const double fractions[] = {0.10, 0.15, 0.20, 0.25, 0.30, 0.33};
  for (double fr : fractions) std::printf(" %7.0f%%", fr * 100.0);
  std::printf("\n");

  struct Entry {
    const char* name;
    std::function<std::unique_ptr<protocols::Protocol>()> make;
  };
  const Entry entries[] = {
      {"hermes",
       [] {
         return std::make_unique<hermes_proto::HermesProtocol>(
             bench::bench_hermes_config());
       }},
      {"l0", [] { return std::make_unique<protocols::L0Protocol>(); }},
      {"narwhal", [] { return std::make_unique<protocols::NarwhalProtocol>(); }},
      {"mercury", [] { return std::make_unique<protocols::MercuryProtocol>(); }},
  };

  for (const Entry& entry : entries) {
    std::printf("%-10s", entry.name);
    for (double fraction : fractions) {
      RunningStats success;
      for (std::size_t rep = 0; rep < opt.reps; ++rep) {
        RunSpec spec;
        spec.nodes = opt.nodes;
        spec.txs = victims_per_rep;
        spec.seed = opt.seed + rep * 1000 +
                    static_cast<std::uint64_t>(fraction * 100);
        spec.byzantine_fraction = fraction;
        spec.byzantine_behavior = protocols::Behavior::kFrontRunner;
        spec.attack = true;
        spec.inter_tx_gap_ms = 400.0;
        spec.drain_ms = 6000.0;
        auto protocol = entry.make();
        const auto result = bench::run_experiment(*protocol, spec);
        success.add(result.attack_success_rate);
      }
      std::printf(" %7.1f%%", success.mean() * 100.0);
    }
    std::printf("\n");
  }
  return 0;
}
