// Simulator hot-path benchmarks (google-benchmark): raw event-engine
// scheduling throughput, the Network::send delivery path, and end-to-end
// HERMES dissemination at paper scale. tools/run_benches.sh runs these and
// records the numbers in BENCH_sim.json; the committed baseline block in
// that file is the pre-rewrite engine (std::function closures on a binary
// heap, RTTI message dispatch, unordered_map pair-latency cache).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "sim/engine.hpp"

namespace {

using namespace hermes;

// --- raw engine microbenches ------------------------------------------------

// Schedule n events at pre-generated pseudo-random offsets, then drain the
// queue. Dominated by event allocation plus priority-queue churn.
void BM_EngineScheduleDrain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4242);
  std::vector<double> delays(n);
  for (auto& d : delays) d = rng.uniform_real(0.0, 1000.0);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Engine e;
    for (std::size_t i = 0; i < n; ++i) {
      e.schedule(delays[i], [&sink] { ++sink; });
    }
    e.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleDrain)->Arg(1024)->Arg(65536)->Arg(1 << 20);

// Same drain with a capture the size of a network delivery closure
// (Network* + Message is ~48 bytes), the dominant event shape in protocol
// runs. The pre-rewrite std::function heap-allocates every one of these.
void BM_EngineScheduleDrainDeliverySized(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4242);
  std::vector<double> delays(n);
  for (auto& d : delays) d = rng.uniform_real(0.0, 1000.0);
  struct Payload {
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    std::shared_ptr<const int> body;
  };
  auto shared_body = std::make_shared<const int>(7);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Engine e;
    for (std::size_t i = 0; i < n; ++i) {
      Payload p;
      p.body = shared_body;
      e.schedule(delays[i], [&sink, p] { sink += p.a; });
    }
    e.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleDrainDeliverySized)->Arg(1024)->Arg(65536);

// Steady-state timer pattern: `timers` self-rescheduling events keep a
// small queue busy for a long run, the shape protocol timers (gossip
// rounds, fallback offers, VCS ticks) produce.
void BM_EngineSteadyStateTimers(benchmark::State& state) {
  const std::size_t timers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kEvents = 1 << 18;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Engine e;
    struct Timer {
      sim::Engine* engine;
      double period;
      std::uint64_t* sink;
      void operator()() {
        ++*sink;
        engine->schedule(period, *this);
      }
    };
    Rng rng(99);
    for (std::size_t i = 0; i < timers; ++i) {
      e.schedule(rng.uniform_real(0.0, 5.0),
                 Timer{&e, rng.uniform_real(1.0, 10.0), &sink});
    }
    e.run(kEvents);
    e.clear();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEvents));
}
BENCHMARK(BM_EngineSteadyStateTimers)->Arg(64)->Arg(4096);

// --- Network::send path -----------------------------------------------------

struct BlastBody final : sim::Body<BlastBody> {
  std::uint64_t payload = 0;
};

class BlastNode final : public sim::Node {
 public:
  using sim::Node::Node;
  std::uint64_t received = 0;
  void on_message(const sim::Message& msg) override {
    received += msg.as<BlastBody>().payload;
  }
  void blast(net::NodeId dst, const std::shared_ptr<const BlastBody>& body) {
    send_to(dst, /*type=*/1, /*wire_bytes=*/256, body);
  }
};

// Random point-to-point sends across a mid-size topology: exercises the
// pair-latency cache, uplink serialization accounting, the delivery
// closure, and typed dispatch on receive.
void BM_NetworkRandomSends(benchmark::State& state) {
  const std::size_t n = 256;
  constexpr std::size_t kSends = 1 << 16;
  const net::Topology topo = bench::make_bench_topology(n, 42);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Engine engine;
    sim::Network network(engine, topo, sim::NetworkParams{}, Rng(7));
    std::vector<std::unique_ptr<BlastNode>> nodes;
    for (net::NodeId v = 0; v < n; ++v) {
      nodes.push_back(std::make_unique<BlastNode>(network, v));
    }
    auto body = std::make_shared<const BlastBody>();
    Rng rng(13);
    for (std::size_t i = 0; i < kSends; ++i) {
      const auto src = static_cast<net::NodeId>(rng.uniform_u64(n));
      auto dst = static_cast<net::NodeId>(rng.uniform_u64(n - 1));
      if (dst >= src) ++dst;
      nodes[src]->blast(dst, body);
      if ((i & 1023) == 0) engine.run_until(engine.now() + 1.0);
    }
    engine.run();
    sink += nodes[0]->received;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSends));
}
BENCHMARK(BM_NetworkRandomSends)->Unit(benchmark::kMillisecond);

// --- end-to-end dissemination ----------------------------------------------

// Full protocol runs, timed over injection + drain only (world construction
// and overlay build excluded via manual timing). The events_per_sec counter
// is the headline sim-throughput number BENCH_sim.json tracks.
// `workers` drives the region-sharded engine; the simulated trace (sends,
// events, delivery times) is identical for every value, only wall time
// changes — which is exactly what the workers sweep measures.
template <typename MakeProtocol>
void dissemination_bench(benchmark::State& state, std::size_t nodes,
                         MakeProtocol&& make_protocol, std::size_t txs,
                         double gap_ms, double drain_ms,
                         std::size_t workers = 1) {
  std::uint64_t total_events = 0;
  std::uint64_t total_sends = 0;
  for (auto _ : state) {
    auto protocol = make_protocol();
    sim::NetworkParams np;
    np.workers = workers;
    protocols::ExperimentContext ctx(bench::make_bench_topology(nodes, 42),
                                     np, 42 ^ 0x5eedULL);
    protocols::populate(ctx, *protocol);
    Rng workload(42 ^ 0x770a1cULL);

    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t events = 0;
    for (std::size_t i = 0; i < txs; ++i) {
      protocols::inject_tx(ctx, ctx.random_honest(workload));
      events += ctx.engine.run_until(ctx.engine.now() + gap_ms);
    }
    events += ctx.engine.run_until(ctx.engine.now() + drain_ms);
    const auto t1 = std::chrono::steady_clock::now();

    state.SetIterationTime(
        std::chrono::duration<double>(t1 - t0).count());
    total_events += events;
    total_sends += ctx.network.total().messages_sent;
  }
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(total_events) /
      static_cast<double>(state.iterations()));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(total_events), benchmark::Counter::kIsRate);
  state.counters["sends"] = benchmark::Counter(
      static_cast<double>(total_sends) /
      static_cast<double>(state.iterations()));
}

// --signer real switches the TRS committee from the HMAC simulation scheme
// to genuine Shoup threshold RSA (key size --rsa-bits); key generation
// happens during protocol construction, outside the manually-timed region,
// so the measured delta is pure per-transaction signing/verify/combine cost.
bool g_real_signer = false;
std::size_t g_signer_rsa_bits = 1024;

// HERMES configured like the fuzzer: k = 3 overlays and a short annealing
// schedule so overlay construction stays a fixed small prologue and the
// measurement tracks the dissemination hot path.
hermes_proto::HermesConfig scale_hermes_config() {
  hermes_proto::HermesConfig cfg = bench::bench_hermes_config(/*f=*/1, /*k=*/3);
  cfg.builder.annealing.initial_temperature = 5.0;
  cfg.builder.annealing.min_temperature = 1.0;
  cfg.builder.annealing.cooling_rate = 0.8;
  cfg.builder.annealing.moves_per_temperature = 4;
  cfg.use_real_threshold_crypto = g_real_signer;
  cfg.real_threshold_rsa_bits = g_signer_rsa_bits;
  return cfg;
}

void BM_HermesDissemination(benchmark::State& state) {
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  dissemination_bench(
      state, nodes,
      [] {
        return std::make_unique<hermes_proto::HermesProtocol>(
            scale_hermes_config());
      },
      /*txs=*/10, /*gap_ms=*/100.0, /*drain_ms=*/2000.0);
}
BENCHMARK(BM_HermesDissemination)
    ->Arg(500)
    ->Arg(2000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Degraded-mode dissemination: three sequential crashes erode the trees'
// f = 1 redundancy margin, then a burst of transactions must still reach
// every live honest node. Arg(0) = fallback-only recovery (self-healing
// off: holes are filled by the delayed offer/pull gossip); Arg(1) = the
// self-healing loop (silence detection -> local repair keeps routing
// on-tree). Counters:
//   recovery_ms    mean sim-time from injection until the LAST live honest
//                  node holds the transaction (time-to-recover)
//   offtree_sends  fallback requests + payloads during the degraded phase
//                  (the message overhead of recovering off-tree)
//   missing        measured txs that never reached some live honest node
// The view-change threshold is pinned high so the healing run stays in the
// local-repair regime — this bench isolates repair, not epoch rebuilds.
void BM_DegradedDissemination(benchmark::State& state) {
  const bool healing = state.range(0) != 0;
  const std::size_t nodes = 150;
  constexpr std::size_t kCrashes = 3;
  constexpr std::size_t kMeasuredTxs = 8;
  double total_recovery = 0.0;
  std::size_t recovered = 0;
  std::uint64_t offtree = 0;
  std::uint64_t missing = 0;
  std::uint64_t total_sends = 0;
  for (auto _ : state) {
    hermes_proto::HermesConfig cfg = scale_hermes_config();
    cfg.enable_self_healing = healing;
    cfg.view_change_threshold = 100.0;
    // Warm traffic runs at a deliberately low rate (the committee's Bracha
    // round is several sequential hops, so a dense single-origin stream
    // would measure queueing, not recovery). A wider health tick keeps the
    // per-tree idle window larger than the inter-arrival gap.
    cfg.health_tick_ms = 500.0;
    auto protocol = std::make_unique<hermes_proto::HermesProtocol>(cfg);
    protocols::ExperimentContext ctx(bench::make_bench_topology(nodes, 42),
                                     sim::NetworkParams{}, 42 ^ 0x5eedULL);
    protocols::populate(ctx, *protocol);
    const auto shared = protocol->shared();

    // Victims: non-committee relays (nodes somebody depends on in at least
    // one tree). Sender: a live non-committee node.
    std::vector<net::NodeId> victims;
    for (net::NodeId v = 0; v < nodes && victims.size() < kCrashes; ++v) {
      if (shared->is_committee_member(v)) continue;
      for (const auto& ov : shared->overlays) {
        if (!ov.successors(v).empty()) {
          victims.push_back(v);
          break;
        }
      }
    }
    // Rotate origins so no single sender's TRS stream serializes the run.
    std::vector<net::NodeId> senders;
    for (net::NodeId v = 0; v < nodes && senders.size() < 8; ++v) {
      if (shared->is_committee_member(v) ||
          std::find(victims.begin(), victims.end(), v) != victims.end()) {
        continue;
      }
      senders.push_back(v);
    }
    std::size_t next_sender = 0;
    const auto pick_sender = [&] {
      const net::NodeId s = senders[next_sender];
      next_sender = (next_sender + 1) % senders.size();
      return s;
    };

    bool counting = false;
    std::uint64_t offtree_run = 0;
    ctx.network.set_send_tap(
        [&](const sim::Message& m, sim::SimTime) {
          if (!counting) return;
          if (m.type == hermes_proto::HermesNode::kMsgFallback ||
              m.type == hermes_proto::HermesNode::kMsgFallbackRequest) {
            ++offtree_run;
          }
        });

    const auto t0 = std::chrono::steady_clock::now();
    const auto warm = [&](int steps) {
      for (int i = 0; i < steps; ++i) {
        protocols::inject_tx(ctx, pick_sender());
        ctx.engine.run_until(ctx.engine.now() + 250.0);
      }
    };
    warm(6);
    // Sequential churn: each crash is followed by enough warm traffic for
    // the healing run to detect the silence and repair before the next one.
    for (net::NodeId victim : victims) {
      ctx.network.set_crashed(victim, true);
      warm(8);
    }
    counting = true;
    struct Measured {
      std::uint64_t tx_id;
      net::NodeId origin;
      double injected_at;
    };
    std::vector<Measured> measured;
    for (std::size_t i = 0; i < kMeasuredTxs; ++i) {
      const net::NodeId origin = pick_sender();
      const auto tx = protocols::inject_tx(ctx, origin);
      measured.push_back(Measured{tx.id, origin, ctx.engine.now()});
      ctx.engine.run_until(ctx.engine.now() + 300.0);
    }
    ctx.engine.run_until(ctx.engine.now() + 6000.0);
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());

    for (const auto& [tx_id, origin, injected_at] : measured) {
      double last = injected_at;
      bool complete = true;
      for (net::NodeId v = 0; v < nodes; ++v) {
        if (v == origin || !ctx.is_honest(v) || ctx.network.is_crashed(v)) {
          continue;
        }
        if (!ctx.tracker.delivered(tx_id, v)) {
          complete = false;
          break;
        }
        last = std::max(last, ctx.tracker.delivery_time(tx_id, v));
      }
      if (complete) {
        total_recovery += last - injected_at;
        ++recovered;
      } else {
        ++missing;
      }
    }
    offtree += offtree_run;
    total_sends += ctx.network.total().messages_sent;
  }
  state.counters["recovery_ms"] = benchmark::Counter(
      recovered == 0 ? 0.0
                     : total_recovery / static_cast<double>(recovered));
  state.counters["offtree_sends"] = benchmark::Counter(
      static_cast<double>(offtree) / static_cast<double>(state.iterations()));
  state.counters["missing"] =
      benchmark::Counter(static_cast<double>(missing));
  state.counters["sends"] = benchmark::Counter(
      static_cast<double>(total_sends) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DegradedDissemination)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Permissionless churn: two leave/rejoin waves roll through the network
// while transactions keep flowing. Arg(0) = stop-the-world recovery (the
// health layer's view change rebuilds all k trees from scratch on the
// serving path as soon as the wave's departures convict); Arg(1) = the
// pipelined epoch transition (epoch e keeps serving while e+1 warm-anneals
// in the background; joins are admitted incrementally, zero scratch
// rebuilds). Counters:
//   recovery_ms       mean sim-time from injection to the LAST live honest
//                     node holding the tx, over txs injected mid-churn
//   epochs_pipelined  background (pipelined) epoch installs
//   epochs_stw        stop-the-world scratch rebuilds
//   missing           measured txs that never covered the live honest set
//   sends             total messages per iteration
void BM_ChurnedDissemination(benchmark::State& state) {
  const bool pipelined = state.range(0) != 0;
  const std::size_t nodes = 150;
  constexpr std::size_t kWaves = 2;
  constexpr std::size_t kChurn = 2;  // nodes leaving/rejoining per wave
  double total_recovery = 0.0;
  std::size_t recovered = 0;
  std::uint64_t missing = 0;
  std::uint64_t total_sends = 0;
  std::uint64_t epochs_pipelined = 0;
  std::uint64_t epochs_stw = 0;
  for (auto _ : state) {
    hermes_proto::HermesConfig cfg = scale_hermes_config();
    cfg.enable_self_healing = true;
    cfg.enable_join_admission = true;
    cfg.health_tick_ms = 500.0;
    if (pipelined) {
      cfg.enable_epoch_pipeline = true;
      cfg.reanneal_hysteresis = 2;
      cfg.pipeline_anneal_ms = 250.0;
      // Churn is the pipeline's job: keep the view-change layer for real
      // degradation only.
      cfg.view_change_threshold = 100.0;
    } else {
      // Classic reaction: a wave's departures trip the health vote and the
      // epoch rebuilds from scratch while traffic waits on the old trees.
      cfg.view_change_threshold = static_cast<double>(kChurn);
      cfg.view_change_cooldown_ms = 1000.0;
    }
    auto protocol = std::make_unique<hermes_proto::HermesProtocol>(cfg);
    protocols::ExperimentContext ctx(bench::make_bench_topology(nodes, 42),
                                     sim::NetworkParams{}, 42 ^ 0x5eedULL);
    protocols::populate(ctx, *protocol);
    const auto shared = protocol->shared();

    // Victims: non-committee relays; the same set leaves and rejoins every
    // wave (the sustained-churn shape: flaky members, not fresh ones).
    std::vector<net::NodeId> victims;
    for (net::NodeId v = 0; v < nodes && victims.size() < kChurn; ++v) {
      if (shared->is_committee_member(v)) continue;
      for (const auto& ov : shared->overlays) {
        if (!ov.successors(v).empty()) {
          victims.push_back(v);
          break;
        }
      }
    }
    std::vector<net::NodeId> senders;
    for (net::NodeId v = 0; v < nodes && senders.size() < 8; ++v) {
      if (shared->is_committee_member(v) ||
          std::find(victims.begin(), victims.end(), v) != victims.end()) {
        continue;
      }
      senders.push_back(v);
    }
    std::size_t next_sender = 0;
    const auto pick_sender = [&] {
      const net::NodeId s = senders[next_sender];
      next_sender = (next_sender + 1) % senders.size();
      return s;
    };

    struct Measured {
      std::uint64_t tx_id;
      net::NodeId origin;
      double injected_at;
    };
    std::vector<Measured> measured;
    bool counting = false;
    const auto warm = [&](int steps) {
      for (int i = 0; i < steps; ++i) {
        const net::NodeId origin = pick_sender();
        const auto tx = protocols::inject_tx(ctx, origin);
        if (counting) {
          measured.push_back(Measured{tx.id, origin, ctx.engine.now()});
        }
        ctx.engine.run_until(ctx.engine.now() + 250.0);
      }
    };

    const auto t0 = std::chrono::steady_clock::now();
    warm(6);
    counting = true;
    for (std::size_t wave = 0; wave < kWaves; ++wave) {
      for (net::NodeId victim : victims) ctx.network.set_crashed(victim, true);
      warm(8);  // keepalive traffic: silence strikes need flowing data
      for (net::NodeId victim : victims) {
        ctx.network.set_crashed(victim, false);
        ctx.engine.schedule(0.0, [&ctx, victim] {
          if (auto* hn = dynamic_cast<hermes_proto::HermesNode*>(
                  &ctx.node(victim))) {
            hn->begin_join();
          }
        });
      }
      warm(8);
    }
    ctx.engine.run_until(ctx.engine.now() + 6000.0);
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());

    for (const auto& [tx_id, origin, injected_at] : measured) {
      double last = injected_at;
      bool complete = true;
      for (net::NodeId v = 0; v < nodes; ++v) {
        if (v == origin || !ctx.is_honest(v) || ctx.network.is_crashed(v)) {
          continue;
        }
        if (!ctx.tracker.delivered(tx_id, v)) {
          complete = false;
          break;
        }
        last = std::max(last, ctx.tracker.delivery_time(tx_id, v));
      }
      if (complete) {
        total_recovery += last - injected_at;
        ++recovered;
      } else {
        ++missing;
      }
    }
    total_sends += ctx.network.total().messages_sent;
    epochs_pipelined += protocol->pipelined_advances();
    epochs_stw += protocol->stop_the_world_advances();
  }
  state.counters["recovery_ms"] = benchmark::Counter(
      recovered == 0 ? 0.0
                     : total_recovery / static_cast<double>(recovered));
  state.counters["epochs_pipelined"] = benchmark::Counter(
      static_cast<double>(epochs_pipelined) /
      static_cast<double>(state.iterations()));
  state.counters["epochs_stw"] = benchmark::Counter(
      static_cast<double>(epochs_stw) /
      static_cast<double>(state.iterations()));
  state.counters["missing"] =
      benchmark::Counter(static_cast<double>(missing));
  state.counters["sends"] = benchmark::Counter(
      static_cast<double>(total_sends) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ChurnedDissemination)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Push-gossip at the same sizes: no overlay build, so this is the purest
// large-N event-engine stress (fanout 8 floods generate ~n * fanout sends
// per transaction).
void BM_GossipDissemination(benchmark::State& state) {
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  dissemination_bench(
      state, nodes,
      [] {
        return std::make_unique<protocols::GossipProtocol>(
            protocols::GossipParams{});
      },
      /*txs=*/10, /*gap_ms=*/100.0, /*drain_ms=*/2000.0);
}
BENCHMARK(BM_GossipDissemination)
    ->Arg(2000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

// Custom main, mirroring bench_overlay_build: --benchmark_* flags pass
// through; --nodes N registers the paper-scale dissemination runs (HERMES
// and gossip) at that N on top of the CI-friendly defaults. The HERMES run
// is registered as a workers sweep (1/2/4/8 engine worker threads over the
// region-sharded engine); --workers W restricts the sweep to that single
// value. The CI-default registrations above stay single-threaded so the
// committed baseline numbers remain comparable. --signer {sim,real} picks
// the TRS backend (default sim) and --rsa-bits N the real key size.
int main(int argc, char** argv) {
  std::vector<char*> filtered{argv[0]};
  std::size_t custom_nodes = 0;
  std::size_t custom_workers = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      filtered.push_back(argv[i]);
    } else if (std::strcmp(argv[i], "--signer") == 0 && i + 1 < argc) {
      ++i;
      if (std::strcmp(argv[i], "real") == 0) {
        g_real_signer = true;
      } else if (std::strcmp(argv[i], "sim") != 0) {
        std::fprintf(stderr, "error: --signer expects sim|real, got '%s'\n",
                     argv[i]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--rsa-bits") == 0 && i + 1 < argc) {
      char* end = nullptr;
      g_signer_rsa_bits = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || g_signer_rsa_bits < 128) {
        std::fprintf(stderr,
                     "error: --rsa-bits expects an integer >= 128, got '%s'\n",
                     argv[i]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      char* end = nullptr;
      custom_nodes = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || custom_nodes == 0) {
        std::fprintf(stderr,
                     "error: --nodes expects a positive integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      char* end = nullptr;
      custom_workers = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || custom_workers == 0) {
        std::fprintf(stderr,
                     "error: --workers expects a positive integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
    }
  }
  if (custom_nodes > 0) {
    const std::vector<std::size_t> sweep =
        custom_workers > 0 ? std::vector<std::size_t>{custom_workers}
                           : std::vector<std::size_t>{1, 2, 4, 8};
    for (const std::size_t w : sweep) {
      benchmark::RegisterBenchmark(
          ("BM_HermesDissemination/" + std::to_string(custom_nodes) +
           "/workers:" + std::to_string(w))
              .c_str(),
          [custom_nodes, w](benchmark::State& state) {
            dissemination_bench(
                state, custom_nodes,
                [] {
                  return std::make_unique<hermes_proto::HermesProtocol>(
                      scale_hermes_config());
                },
                /*txs=*/5, /*gap_ms=*/100.0, /*drain_ms=*/2000.0,
                /*workers=*/w);
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
    benchmark::RegisterBenchmark(
        ("BM_GossipDissemination/" + std::to_string(custom_nodes)).c_str(),
        [custom_nodes, custom_workers](benchmark::State& state) {
          dissemination_bench(
              state, custom_nodes,
              [] {
                return std::make_unique<protocols::GossipProtocol>(
                    protocols::GossipParams{});
              },
              /*txs=*/5, /*gap_ms=*/100.0, /*drain_ms=*/2000.0,
              /*workers=*/custom_workers > 0 ? custom_workers : 1);
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
