// Simulator hot-path benchmarks (google-benchmark): raw event-engine
// scheduling throughput, the Network::send delivery path, and end-to-end
// HERMES dissemination at paper scale. tools/run_benches.sh runs these and
// records the numbers in BENCH_sim.json; the committed baseline block in
// that file is the pre-rewrite engine (std::function closures on a binary
// heap, RTTI message dispatch, unordered_map pair-latency cache).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "sim/engine.hpp"

namespace {

using namespace hermes;

// --- raw engine microbenches ------------------------------------------------

// Schedule n events at pre-generated pseudo-random offsets, then drain the
// queue. Dominated by event allocation plus priority-queue churn.
void BM_EngineScheduleDrain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4242);
  std::vector<double> delays(n);
  for (auto& d : delays) d = rng.uniform_real(0.0, 1000.0);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Engine e;
    for (std::size_t i = 0; i < n; ++i) {
      e.schedule(delays[i], [&sink] { ++sink; });
    }
    e.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleDrain)->Arg(1024)->Arg(65536)->Arg(1 << 20);

// Same drain with a capture the size of a network delivery closure
// (Network* + Message is ~48 bytes), the dominant event shape in protocol
// runs. The pre-rewrite std::function heap-allocates every one of these.
void BM_EngineScheduleDrainDeliverySized(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4242);
  std::vector<double> delays(n);
  for (auto& d : delays) d = rng.uniform_real(0.0, 1000.0);
  struct Payload {
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    std::shared_ptr<const int> body;
  };
  auto shared_body = std::make_shared<const int>(7);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Engine e;
    for (std::size_t i = 0; i < n; ++i) {
      Payload p;
      p.body = shared_body;
      e.schedule(delays[i], [&sink, p] { sink += p.a; });
    }
    e.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleDrainDeliverySized)->Arg(1024)->Arg(65536);

// Steady-state timer pattern: `timers` self-rescheduling events keep a
// small queue busy for a long run, the shape protocol timers (gossip
// rounds, fallback offers, VCS ticks) produce.
void BM_EngineSteadyStateTimers(benchmark::State& state) {
  const std::size_t timers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kEvents = 1 << 18;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Engine e;
    struct Timer {
      sim::Engine* engine;
      double period;
      std::uint64_t* sink;
      void operator()() {
        ++*sink;
        engine->schedule(period, *this);
      }
    };
    Rng rng(99);
    for (std::size_t i = 0; i < timers; ++i) {
      e.schedule(rng.uniform_real(0.0, 5.0),
                 Timer{&e, rng.uniform_real(1.0, 10.0), &sink});
    }
    e.run(kEvents);
    e.clear();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEvents));
}
BENCHMARK(BM_EngineSteadyStateTimers)->Arg(64)->Arg(4096);

// --- Network::send path -----------------------------------------------------

struct BlastBody final : sim::Body<BlastBody> {
  std::uint64_t payload = 0;
};

class BlastNode final : public sim::Node {
 public:
  using sim::Node::Node;
  std::uint64_t received = 0;
  void on_message(const sim::Message& msg) override {
    received += msg.as<BlastBody>().payload;
  }
  void blast(net::NodeId dst, const std::shared_ptr<const BlastBody>& body) {
    send_to(dst, /*type=*/1, /*wire_bytes=*/256, body);
  }
};

// Random point-to-point sends across a mid-size topology: exercises the
// pair-latency cache, uplink serialization accounting, the delivery
// closure, and typed dispatch on receive.
void BM_NetworkRandomSends(benchmark::State& state) {
  const std::size_t n = 256;
  constexpr std::size_t kSends = 1 << 16;
  const net::Topology topo = bench::make_bench_topology(n, 42);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Engine engine;
    sim::Network network(engine, topo, sim::NetworkParams{}, Rng(7));
    std::vector<std::unique_ptr<BlastNode>> nodes;
    for (net::NodeId v = 0; v < n; ++v) {
      nodes.push_back(std::make_unique<BlastNode>(network, v));
    }
    auto body = std::make_shared<const BlastBody>();
    Rng rng(13);
    for (std::size_t i = 0; i < kSends; ++i) {
      const auto src = static_cast<net::NodeId>(rng.uniform_u64(n));
      auto dst = static_cast<net::NodeId>(rng.uniform_u64(n - 1));
      if (dst >= src) ++dst;
      nodes[src]->blast(dst, body);
      if ((i & 1023) == 0) engine.run_until(engine.now() + 1.0);
    }
    engine.run();
    sink += nodes[0]->received;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSends));
}
BENCHMARK(BM_NetworkRandomSends)->Unit(benchmark::kMillisecond);

// --- end-to-end dissemination ----------------------------------------------

// Full protocol runs, timed over injection + drain only (world construction
// and overlay build excluded via manual timing). The events_per_sec counter
// is the headline sim-throughput number BENCH_sim.json tracks.
template <typename MakeProtocol>
void dissemination_bench(benchmark::State& state, std::size_t nodes,
                         MakeProtocol&& make_protocol, std::size_t txs,
                         double gap_ms, double drain_ms) {
  std::uint64_t total_events = 0;
  std::uint64_t total_sends = 0;
  for (auto _ : state) {
    auto protocol = make_protocol();
    protocols::ExperimentContext ctx(bench::make_bench_topology(nodes, 42),
                                     sim::NetworkParams{}, 42 ^ 0x5eedULL);
    protocols::populate(ctx, *protocol);
    Rng workload(42 ^ 0x770a1cULL);

    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t events = 0;
    for (std::size_t i = 0; i < txs; ++i) {
      protocols::inject_tx(ctx, ctx.random_honest(workload));
      events += ctx.engine.run_until(ctx.engine.now() + gap_ms);
    }
    events += ctx.engine.run_until(ctx.engine.now() + drain_ms);
    const auto t1 = std::chrono::steady_clock::now();

    state.SetIterationTime(
        std::chrono::duration<double>(t1 - t0).count());
    total_events += events;
    total_sends += ctx.network.total().messages_sent;
  }
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(total_events) /
      static_cast<double>(state.iterations()));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(total_events), benchmark::Counter::kIsRate);
  state.counters["sends"] = benchmark::Counter(
      static_cast<double>(total_sends) /
      static_cast<double>(state.iterations()));
}

// HERMES configured like the fuzzer: k = 3 overlays and a short annealing
// schedule so overlay construction stays a fixed small prologue and the
// measurement tracks the dissemination hot path.
hermes_proto::HermesConfig scale_hermes_config() {
  hermes_proto::HermesConfig cfg = bench::bench_hermes_config(/*f=*/1, /*k=*/3);
  cfg.builder.annealing.initial_temperature = 5.0;
  cfg.builder.annealing.min_temperature = 1.0;
  cfg.builder.annealing.cooling_rate = 0.8;
  cfg.builder.annealing.moves_per_temperature = 4;
  return cfg;
}

void BM_HermesDissemination(benchmark::State& state) {
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  dissemination_bench(
      state, nodes,
      [] {
        return std::make_unique<hermes_proto::HermesProtocol>(
            scale_hermes_config());
      },
      /*txs=*/10, /*gap_ms=*/100.0, /*drain_ms=*/2000.0);
}
BENCHMARK(BM_HermesDissemination)
    ->Arg(500)
    ->Arg(2000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Push-gossip at the same sizes: no overlay build, so this is the purest
// large-N event-engine stress (fanout 8 floods generate ~n * fanout sends
// per transaction).
void BM_GossipDissemination(benchmark::State& state) {
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  dissemination_bench(
      state, nodes,
      [] {
        return std::make_unique<protocols::GossipProtocol>(
            protocols::GossipParams{});
      },
      /*txs=*/10, /*gap_ms=*/100.0, /*drain_ms=*/2000.0);
}
BENCHMARK(BM_GossipDissemination)
    ->Arg(2000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

// Custom main, mirroring bench_overlay_build: --benchmark_* flags pass
// through; --nodes N registers the paper-scale dissemination runs (HERMES
// and gossip) at that N on top of the CI-friendly defaults.
int main(int argc, char** argv) {
  std::vector<char*> filtered{argv[0]};
  std::size_t custom_nodes = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      filtered.push_back(argv[i]);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      char* end = nullptr;
      custom_nodes = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || custom_nodes == 0) {
        std::fprintf(stderr,
                     "error: --nodes expects a positive integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
    }
  }
  if (custom_nodes > 0) {
    benchmark::RegisterBenchmark(
        ("BM_HermesDissemination/" + std::to_string(custom_nodes)).c_str(),
        [custom_nodes](benchmark::State& state) {
          dissemination_bench(
              state, custom_nodes,
              [] {
                return std::make_unique<hermes_proto::HermesProtocol>(
                    scale_hermes_config());
              },
              /*txs=*/5, /*gap_ms=*/100.0, /*drain_ms=*/2000.0);
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("BM_GossipDissemination/" + std::to_string(custom_nodes)).c_str(),
        [custom_nodes](benchmark::State& state) {
          dissemination_bench(
              state, custom_nodes,
              [] {
                return std::make_unique<protocols::GossipProtocol>(
                    protocols::GossipParams{});
              },
              /*txs=*/5, /*gap_ms=*/100.0, /*drain_ms=*/2000.0);
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
