// Crypto kernel and threshold-RSA benchmarks (google-benchmark).
// tools/run_benches.sh runs these and records BENCH_crypto.json.
//
// The pre-PR kernels are still in the tree (crypto/bignum_reference.*:
// 32-bit schoolbook multiply, binary division, bit-at-a-time Montgomery),
// so every speedup this binary reports is measured against the legacy
// implementation in the same run on the same inputs — BM_ModExp (new) vs
// BM_ModExpLegacy is the headline pair the ≥5x modexp-2048 claim rests on.
//
// Sections:
//   - mul/sqr kernel curves vs operand size (new Karatsuba/schoolbook split
//     and the squaring specialization vs the legacy schoolbook);
//   - modexp at 512/1024/2048-bit odd moduli (windowed Montgomery vs
//     legacy), plus mulmod through a warm MontgomeryCtx vs divmod;
//   - threshold RSA: partial sign, single + batched proof verification,
//     combine with warm vs cold Lagrange/Montgomery caches, RSA-FDH
//     sign/verify. Key size via --rsa-bits (default 512 so the trusted
//     dealer's safe-prime search stays fast; run_benches.sh passes larger).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "crypto/bignum.hpp"
#include "crypto/bignum_reference.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sim_signer.hpp"
#include "crypto/threshold_rsa.hpp"
#include "support/rng.hpp"

namespace {

using namespace hermes;
using crypto::BigUint;
using crypto::MontgomeryCtx;

std::size_t g_rsa_bits = 512;  // --rsa-bits

// --- multiplication kernels -------------------------------------------------

BigUint random_limbs(Rng& rng, std::size_t limbs) {
  return BigUint::random_bits(rng, limbs * 64);
}

void BM_MulNew(benchmark::State& state) {
  const auto limbs = static_cast<std::size_t>(state.range(0));
  Rng rng(0xA11CE);
  const BigUint a = random_limbs(rng, limbs);
  const BigUint b = random_limbs(rng, limbs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MulNew)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MulLegacy(benchmark::State& state) {
  const auto limbs = static_cast<std::size_t>(state.range(0));
  Rng rng(0xA11CE);
  const BigUint a = random_limbs(rng, limbs);
  const BigUint b = random_limbs(rng, limbs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ref::mul(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MulLegacy)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_SqrNew(benchmark::State& state) {
  const auto limbs = static_cast<std::size_t>(state.range(0));
  Rng rng(0xA11CE);
  const BigUint a = random_limbs(rng, limbs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigUint::sqr(a));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqrNew)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// --- modular exponentiation -------------------------------------------------

struct ModExpInput {
  BigUint base;
  BigUint exp;
  BigUint mod;  // odd
};

ModExpInput modexp_input(std::size_t bits) {
  Rng rng(0xBEEF ^ bits);
  ModExpInput in;
  in.mod = BigUint::random_bits(rng, bits);
  if (!in.mod.is_odd()) in.mod = in.mod + BigUint(1);
  in.base = BigUint::random_below(rng, in.mod);
  in.exp = BigUint::random_bits(rng, bits);
  return in;
}

// Windowed Montgomery through a warm context — the post-PR hot path. The
// items_per_second counter on the 2048-bit run, divided by the legacy one,
// is the modexp speedup BENCH_crypto.json records.
void BM_ModExp(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const ModExpInput in = modexp_input(bits);
  const MontgomeryCtx ctx(in.mod);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.powmod(in.base, in.exp));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModExp)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

// Same inputs through the frozen pre-PR kernel (32-bit CIOS,
// bit-at-a-time square-and-multiply, per-call context).
void BM_ModExpLegacy(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const ModExpInput in = modexp_input(bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ref::powmod(in.base, in.exp, in.mod));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModExpLegacy)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

// Modular multiplication: two CIOS passes through a warm context...
void BM_MulModCtx(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const ModExpInput in = modexp_input(bits);
  const MontgomeryCtx ctx(in.mod);
  const BigUint b = in.exp % in.mod;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.mulmod(in.base, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MulModCtx)->Arg(1024)->Arg(2048);

// ...vs the generic multiply-then-divide path.
void BM_MulModDivmod(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const ModExpInput in = modexp_input(bits);
  const BigUint b = in.exp % in.mod;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigUint::mulmod(in.base, b, in.mod));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MulModDivmod)->Arg(1024)->Arg(2048);

// --- threshold RSA ----------------------------------------------------------

struct ThresholdFixture {
  crypto::ThresholdRsaKey key;
  std::unique_ptr<crypto::ThresholdRsaContext> ctx;
  Bytes message;
  std::vector<crypto::ThresholdPartial> partials;  // threshold-many, valid
};

// One key per --rsa-bits value for the whole process: the trusted dealer's
// safe-prime search is the slow part and is not what these benches measure.
const ThresholdFixture& threshold_fixture() {
  static const ThresholdFixture fixture = [] {
    ThresholdFixture f;
    Rng rng(31337);
    // f = 1 committee: 4 players, threshold 3 — the sim's smallest shape.
    f.key = crypto::threshold_rsa_generate(rng, g_rsa_bits, /*players=*/4,
                                           /*threshold=*/3);
    f.ctx = std::make_unique<crypto::ThresholdRsaContext>(f.key.pub);
    f.message = to_bytes("bench.threshold.message");
    for (std::size_t i = 1; i <= f.key.pub.threshold; ++i) {
      f.partials.push_back(crypto::threshold_partial_sign(
          *f.ctx, f.key.shares[i - 1], f.message));
    }
    return f;
  }();
  return fixture;
}

void BM_ThresholdPartialSign(benchmark::State& state) {
  const ThresholdFixture& f = threshold_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::threshold_partial_sign(*f.ctx, f.key.shares[0], f.message));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThresholdPartialSign)->Unit(benchmark::kMicrosecond);

void BM_ThresholdVerifyPartial(benchmark::State& state) {
  const ThresholdFixture& f = threshold_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::threshold_verify_partial(*f.ctx, f.message, f.partials[0]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThresholdVerifyPartial)->Unit(benchmark::kMicrosecond);

// Batched round verification: per-partial cost with the shared Fiat-Shamir
// base precomputation amortized over threshold-many partials.
void BM_ThresholdVerifyPartialsBatch(benchmark::State& state) {
  const ThresholdFixture& f = threshold_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::threshold_verify_partials(*f.ctx, f.message, f.partials));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.partials.size()));
}
BENCHMARK(BM_ThresholdVerifyPartialsBatch)->Unit(benchmark::kMicrosecond);

// Combine with every cache warm (Montgomery context, Bezout pair, Lagrange
// coefficients for this index subset) — the steady-state committee path.
void BM_ThresholdCombineWarm(benchmark::State& state) {
  const ThresholdFixture& f = threshold_fixture();
  // Prime the Lagrange cache for this subset.
  benchmark::DoNotOptimize(
      crypto::threshold_combine(*f.ctx, f.message, f.partials));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::threshold_combine(*f.ctx, f.message, f.partials));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThresholdCombineWarm)->Unit(benchmark::kMicrosecond);

// Combine through a freshly built context each call: pays the R^2 division,
// Bezout gcd and Lagrange recomputation — the epoch-cold path.
void BM_ThresholdCombineCold(benchmark::State& state) {
  const ThresholdFixture& f = threshold_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::threshold_combine(f.key.pub, f.message, f.partials));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThresholdCombineCold)->Unit(benchmark::kMicrosecond);

void BM_RsaFdhSign(benchmark::State& state) {
  Rng rng(0x5157);
  const crypto::RsaKeyPair key =
      crypto::rsa_generate(rng, g_rsa_bits, /*safe_primes=*/false);
  const MontgomeryCtx mont(key.pub.n);
  const Bytes msg = to_bytes("bench.rsa.message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign(key, msg, mont));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RsaFdhSign)->Unit(benchmark::kMicrosecond);

void BM_RsaFdhVerify(benchmark::State& state) {
  Rng rng(0x5157);
  const crypto::RsaKeyPair key =
      crypto::rsa_generate(rng, g_rsa_bits, /*safe_primes=*/false);
  const MontgomeryCtx mont(key.pub.n);
  const Bytes msg = to_bytes("bench.rsa.message");
  const Bytes sig = crypto::rsa_sign(key, msg, mont);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(key.pub, msg, sig, mont));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RsaFdhVerify)->Unit(benchmark::kMicrosecond);

}  // namespace

// Custom main mirroring bench_sim_engine: --benchmark_* flags pass through;
// --rsa-bits B sets the threshold/RSA key size (default 512). Kernel curves
// (mul/modexp) run at fixed sizes regardless.
int main(int argc, char** argv) {
  std::vector<char*> filtered{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      filtered.push_back(argv[i]);
    } else if (std::strcmp(argv[i], "--rsa-bits") == 0 && i + 1 < argc) {
      char* end = nullptr;
      g_rsa_bits = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || g_rsa_bits < 128) {
        std::fprintf(stderr,
                     "error: --rsa-bits expects an integer >= 128, got '%s'\n",
                     argv[i]);
        return 1;
      }
    }
  }
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
