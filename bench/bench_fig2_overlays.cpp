// Figure 2: dissemination latency and per-node load stddev over a single
// f+1-connected instance of each overlay family: robust tree (pre-pruning),
// chordal ring, hypercube, random f+1-connected overlay.
//
// Expected shape (paper): robust trees show the LOWEST latency but the
// HIGHEST load imbalance; ring/hypercube/random overlays balance load but
// pay multi-hop latency.
#include <cstdio>

#include "bench/common.hpp"
#include "overlay/families.hpp"
#include "overlay/robust_tree.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  const auto opt = bench::Options::parse(argc, argv, /*default_nodes=*/200);
  const std::size_t f = 1;

  std::printf("Figure 2 — overlay families (N=%zu, f=%zu, %zu reps)\n",
              opt.nodes, f, opt.reps);
  std::printf("%-22s %14s %16s %10s\n", "overlay", "avg latency ms",
              "load stddev msg", "reached");

  struct Row {
    const char* name;
    RunningStats latency, load, reach;
  };
  Row rows[] = {{"robust-tree (raw)", {}, {}, {}},
                {"chordal-ring", {}, {}, {}},
                {"hypercube", {}, {}, {}},
                {"random f+1-conn", {}, {}, {}},
                {"k-diamond", {}, {}, {}},
                {"pasted-trees", {}, {}, {}}};

  for (std::size_t rep = 0; rep < opt.reps; ++rep) {
    const std::uint64_t seed = opt.seed + rep;
    const net::Topology topo = bench::make_bench_topology(opt.nodes, seed);
    Rng rng(seed ^ 0xf16);

    // Robust tree (pre-pruning), flooded from its entry points.
    {
      overlay::RobustTreeParams params;
      params.f = f;
      overlay::RankTable ranks(opt.nodes, 0.0);
      const overlay::Overlay tree =
          overlay::build_robust_tree(topo.graph, params, ranks);
      const auto m = overlay::measure_overlay_flood(tree);
      rows[0].latency.add(m.avg_latency);
      rows[0].load.add(m.load_stddev);
      rows[0].reach.add(m.reached_fraction);
    }
    // Undirected families, flooded from a random source.
    const net::NodeId source =
        static_cast<net::NodeId>(rng.uniform_u64(opt.nodes));
    const net::Graph ring = overlay::make_chordal_ring(topo, f, rng);
    const net::Graph cube = overlay::make_hypercube(topo, f, rng);
    const net::Graph rand_g = overlay::make_random_connected(topo, f, rng);
    const net::Graph diamond = overlay::make_k_diamond(topo, f, rng);
    const net::Graph pasted = overlay::make_pasted_trees(topo, f, rng);
    const overlay::FloodMetrics ms[] = {overlay::measure_flood(ring, source),
                                        overlay::measure_flood(cube, source),
                                        overlay::measure_flood(rand_g, source),
                                        overlay::measure_flood(diamond, source),
                                        overlay::measure_flood(pasted, source)};
    for (int i = 0; i < 5; ++i) {
      rows[i + 1].latency.add(ms[i].avg_latency);
      rows[i + 1].load.add(ms[i].load_stddev);
      rows[i + 1].reach.add(ms[i].reached_fraction);
    }
  }

  for (const Row& row : rows) {
    std::printf("%-22s %14.2f %16.2f %9.1f%%\n", row.name, row.latency.mean(),
                row.load.mean(), row.reach.mean() * 100.0);
  }
  return 0;
}
