// Section VIII-A micro-benchmarks (google-benchmark): overlay construction
// cost (the paper reports < 15 s for k = 10 overlays at N = 10,000) and the
// cryptographic primitives on HERMES's critical path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "crypto/sim_signer.hpp"
#include "crypto/threshold_rsa.hpp"
#include "overlay/builder.hpp"
#include "overlay/encoding.hpp"

namespace {

using namespace hermes;

void BM_RobustTreeBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const net::Topology topo = bench::make_bench_topology(n, 42);
  for (auto _ : state) {
    overlay::RobustTreeParams params;
    params.f = 1;
    overlay::RankTable ranks(n, 0.0);
    benchmark::DoNotOptimize(
        overlay::build_robust_tree(topo.graph, params, ranks));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RobustTreeBuild)->Arg(100)->Arg(200)->Arg(400)->Complexity();

void BM_OverlaySetBuildK10(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const net::Topology topo = bench::make_bench_topology(n, 42);
  overlay::BuilderParams params;
  params.f = 1;
  params.k = 10;
  params.annealing = bench::bench_hermes_config().builder.annealing;
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(overlay::build_overlay_set(topo.graph, params, rng));
  }
}
BENCHMARK(BM_OverlaySetBuildK10)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

// One annealing pass as build_overlay_set runs it: the shortest-latency
// cache is shared across calls (it is immutable w.r.t. the physical graph),
// so only the moves themselves are measured.
void BM_SimulatedAnnealingPass(benchmark::State& state) {
  const std::size_t n = 200;
  const net::Topology topo = bench::make_bench_topology(n, 42);
  overlay::RobustTreeParams tree_params;
  tree_params.f = 1;
  overlay::RankTable ranks(n, 0.0);
  const overlay::Overlay tree =
      overlay::build_robust_tree(topo.graph, tree_params, ranks);
  const overlay::AnnealingParams params =
      bench::bench_hermes_config().builder.annealing;
  overlay::LinkCostCache costs(topo.graph);
  for (auto _ : state) {
    Rng rng(9);
    benchmark::DoNotOptimize(
        overlay::anneal(tree, ranks, params, rng, costs, nullptr));
  }
}
BENCHMARK(BM_SimulatedAnnealingPass)->Unit(benchmark::kMillisecond);

// Same pass with a cache rebuilt per call (the pre-shared-cache behavior);
// the gap to BM_SimulatedAnnealingPass is the cache amortization.
void BM_SimulatedAnnealingColdCache(benchmark::State& state) {
  const std::size_t n = 200;
  const net::Topology topo = bench::make_bench_topology(n, 42);
  overlay::RobustTreeParams tree_params;
  tree_params.f = 1;
  overlay::RankTable ranks(n, 0.0);
  const overlay::Overlay tree =
      overlay::build_robust_tree(topo.graph, tree_params, ranks);
  const overlay::AnnealingParams params =
      bench::bench_hermes_config().builder.annealing;
  for (auto _ : state) {
    Rng rng(9);
    benchmark::DoNotOptimize(
        overlay::anneal(tree, topo.graph, ranks, params, rng));
  }
}
BENCHMARK(BM_SimulatedAnnealingColdCache)->Unit(benchmark::kMillisecond);

// Serial vs parallel candidate evaluation at a fixed batch size; Arg is the
// worker count. The annealed overlay is bit-identical across all Args.
void BM_SimulatedAnnealingWorkers(benchmark::State& state) {
  const std::size_t n = 200;
  const net::Topology topo = bench::make_bench_topology(n, 42);
  overlay::RobustTreeParams tree_params;
  tree_params.f = 1;
  overlay::RankTable ranks(n, 0.0);
  const overlay::Overlay tree =
      overlay::build_robust_tree(topo.graph, tree_params, ranks);
  overlay::AnnealingParams params =
      bench::bench_hermes_config().builder.annealing;
  params.batch_size = 8;
  params.workers = static_cast<std::size_t>(state.range(0));
  overlay::LinkCostCache costs(topo.graph);
  ThreadPool pool(params.workers > 1 ? params.workers - 1 : 0);
  for (auto _ : state) {
    Rng rng(9);
    benchmark::DoNotOptimize(
        overlay::anneal(tree, ranks, params, rng, costs, &pool));
  }
}
BENCHMARK(BM_SimulatedAnnealingWorkers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_OverlayEncode(benchmark::State& state) {
  const std::size_t n = 200;
  const net::Topology topo = bench::make_bench_topology(n, 42);
  overlay::RobustTreeParams params;
  params.f = 1;
  overlay::RankTable ranks(n, 0.0);
  const overlay::Overlay tree =
      overlay::build_robust_tree(topo.graph, params, ranks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay::encode_overlay(tree));
  }
}
BENCHMARK(BM_OverlayEncode);

void BM_Sha256_1KiB(benchmark::State& state) {
  Bytes data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_SimThresholdRoundTrip(benchmark::State& state) {
  const crypto::SimThresholdScheme scheme(to_bytes("grp"), 4, 3);
  const Bytes msg = to_bytes("seed material");
  for (auto _ : state) {
    std::vector<crypto::PartialSignature> partials;
    for (std::size_t i = 1; i <= 3; ++i) {
      partials.push_back(scheme.partial_sign(i, msg));
    }
    benchmark::DoNotOptimize(scheme.combine(msg, partials));
  }
}
BENCHMARK(BM_SimThresholdRoundTrip);

void BM_ThresholdRsaPartialSign(benchmark::State& state) {
  Rng rng(31337);
  static const crypto::ThresholdRsaKey key =
      crypto::threshold_rsa_generate(rng, 256, 4, 3);
  const Bytes msg = to_bytes("seed material");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::threshold_partial_sign(key.pub, key.shares[0], msg));
  }
}
BENCHMARK(BM_ThresholdRsaPartialSign)->Unit(benchmark::kMillisecond);

void BM_ThresholdRsaCombine(benchmark::State& state) {
  Rng rng(31337);
  static const crypto::ThresholdRsaKey key =
      crypto::threshold_rsa_generate(rng, 256, 4, 3);
  const Bytes msg = to_bytes("seed material");
  std::vector<crypto::ThresholdPartial> partials;
  for (std::size_t i = 0; i < 3; ++i) {
    partials.push_back(
        crypto::threshold_partial_sign(key.pub, key.shares[i], msg));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::threshold_combine(key.pub, msg, partials));
  }
}
BENCHMARK(BM_ThresholdRsaCombine)->Unit(benchmark::kMillisecond);

// Paper-scale construction: registered only when --nodes is passed, so CI
// runs stay at the friendly defaults while `--nodes 2000` / `--nodes 5000`
// reproduce the Section VIII-A scaling point on demand.
void BM_OverlaySetBuildK10AtNodes(benchmark::State& state, std::size_t n) {
  const net::Topology topo = bench::make_bench_topology(n, 42);
  overlay::BuilderParams params;
  params.f = 1;
  params.k = 10;
  params.annealing = bench::bench_hermes_config().builder.annealing;
  params.annealing.batch_size = 8;
  params.annealing.workers = std::max(1u, std::thread::hardware_concurrency());
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(overlay::build_overlay_set(topo.graph, params, rng));
  }
}

}  // namespace

// Custom main: tolerate the shared sweep flags (--reps/--txs/...) that the
// other bench binaries accept, passing only --benchmark_* through. --nodes N
// additionally registers the paper-scale overlay-set build at that N.
int main(int argc, char** argv) {
  std::vector<char*> filtered{argv[0]};
  std::size_t custom_nodes = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      filtered.push_back(argv[i]);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      char* end = nullptr;
      custom_nodes = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || custom_nodes == 0) {
        std::fprintf(stderr, "error: --nodes expects a positive integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
    }
  }
  if (custom_nodes > 0) {
    benchmark::RegisterBenchmark(
        ("BM_OverlaySetBuildK10/" + std::to_string(custom_nodes)).c_str(),
        [custom_nodes](benchmark::State& state) {
          BM_OverlaySetBuildK10AtNodes(state, custom_nodes);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
