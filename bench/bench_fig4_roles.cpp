// Figure 4: distribution of roles (ranks/depths) for each node across the
// k = 10 generated overlay structures at N = 200, f = 1.
//
// Expected shape (paper): 10 x (f+1) = 20 entry-point slots spread over
// distinct nodes, ranks widely distributed, no node consistently favored.
#include <cstdio>

#include "bench/common.hpp"
#include "overlay/builder.hpp"
#include "overlay/roles.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  const auto opt = bench::Options::parse(argc, argv, /*default_nodes=*/200);
  const std::size_t k = 10, f = 1;

  const net::Topology topo = bench::make_bench_topology(opt.nodes, opt.seed);
  overlay::BuilderParams params;
  params.f = f;
  params.k = k;
  params.annealing = bench::bench_hermes_config().builder.annealing;
  Rng rng(opt.seed);
  const overlay::OverlaySet set = overlay::build_overlay_set(topo.graph, params, rng);

  const overlay::RoleDistribution dist = overlay::role_distribution(set.overlays);
  const overlay::FairnessMetrics fair = overlay::fairness_metrics(set.overlays);

  std::printf("Figure 4 — role distribution (N=%zu, k=%zu, f=%zu)\n", opt.nodes,
              k, f);

  // Per-depth occupancy histogram: how many (node, overlay) placements sit
  // at each rank.
  std::vector<std::size_t> occupancy(dist.max_depth + 1, 0);
  for (const auto& per_node : dist.counts) {
    for (std::size_t d = 1; d < per_node.size(); ++d) {
      occupancy[d] += per_node[d];
    }
  }
  std::printf("\nrank  placements (out of %zu)\n", opt.nodes * k);
  for (std::size_t d = 1; d <= dist.max_depth; ++d) {
    std::printf("%4zu  %6zu  ", d, occupancy[d]);
    for (std::size_t bar = 0; bar < occupancy[d] * 60 / (opt.nodes * k) + 1; ++bar) {
      std::putchar('#');
    }
    std::putchar('\n');
  }

  // Entry-point rotation: list every node that served as an entry point.
  std::printf("\nentry-point slots: %zu total, held by nodes:", k * (f + 1));
  std::size_t entry_nodes = 0;
  for (net::NodeId v = 0; v < opt.nodes; ++v) {
    if (dist.entry_appearances(v) > 0) {
      std::printf(" %u(x%zu)", v, dist.entry_appearances(v));
      ++entry_nodes;
    }
  }
  std::printf("\ndistinct entry nodes: %zu, max times any node was entry: %zu\n",
              entry_nodes, fair.max_entry_appearances);

  // Sample rows in the style of the figure's per-node bars.
  std::printf("\nper-node rank counts (sample):\n");
  for (net::NodeId v = 0; v < opt.nodes; v += opt.nodes / 10) {
    std::printf("node %3u: ", v);
    for (std::size_t d = 1; d <= dist.max_depth; ++d) {
      if (dist.counts[v][d] > 0) {
        std::printf("rank%zu x%zu  ", d, dist.counts[v][d]);
      }
    }
    std::printf("(mean depth %.2f)\n", dist.mean_depth(v));
  }

  std::printf("\nfairness: mean-depth stddev %.3f, load stddev %.2f\n",
              fair.mean_depth_stddev, fair.load_stddev);
  return 0;
}
