// Figure 3b: bandwidth overhead in KB/min for LØ, HERMES, Mercury, Narwhal
// at N = 200, plus HERMES's amortized figure (tree encoding only on view
// change rather than per transaction).
//
// Paper: LØ 50 < HERMES 192 (162 amortized) < Mercury 322 < Narwhal 730.
// Expected shape here: same ordering; the amortized HERMES figure is lower
// than the per-view-change one.
#include <cstdio>
#include <functional>

#include "bench/common.hpp"
#include "overlay/encoding.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using bench::RunSpec;
  const auto opt = bench::Options::parse(argc, argv, /*default_nodes=*/200);

  // Fixed simulated observation window with a steady workload.
  const double kWindowMs = 60'000.0;
  const std::size_t kTxPerWindow = std::max<std::size_t>(opt.txs * 4, 20);

  std::printf(
      "Figure 3b — bandwidth overhead (N=%zu, %zu tx / simulated minute, %zu "
      "reps)\n",
      opt.nodes, kTxPerWindow, opt.reps);
  std::printf("%-26s %14s\n", "protocol", "KB/min/node");

  struct Entry {
    const char* name;
    std::function<std::unique_ptr<protocols::Protocol>()> make;
  };
  const Entry entries[] = {
      {"l0", [] { return std::make_unique<protocols::L0Protocol>(); }},
      {"hermes",
       [] {
         return std::make_unique<hermes_proto::HermesProtocol>(
             bench::bench_hermes_config());
       }},
      {"mercury", [] { return std::make_unique<protocols::MercuryProtocol>(); }},
      {"narwhal", [] { return std::make_unique<protocols::NarwhalProtocol>(); }},
  };

  double hermes_kb_min = 0.0;
  double tree_dissemination_kb = 0.0;

  for (const Entry& entry : entries) {
    RunningStats kb_per_min;
    for (std::size_t rep = 0; rep < opt.reps; ++rep) {
      RunSpec spec;
      spec.nodes = opt.nodes;
      spec.txs = kTxPerWindow;
      spec.seed = opt.seed + rep;
      spec.inter_tx_gap_ms = kWindowMs / static_cast<double>(kTxPerWindow);
      spec.drain_ms = 0.0;  // measure exactly one window
      auto protocol = entry.make();
      const auto result = bench::run_experiment(*protocol, spec);
      const double minutes = result.sim_duration_ms / 60'000.0;
      kb_per_min.add(static_cast<double>(result.total_bytes_sent) / 1024.0 /
                     minutes / static_cast<double>(opt.nodes));

      // HERMES view-change accounting: charge the signed tree encodings as
      // if redistributed once this window (the paper's pessimistic case).
      if (std::string(entry.name) == "hermes" && rep == 0) {
        auto* hermes_protocol =
            static_cast<hermes_proto::HermesProtocol*>(protocol.get());
        std::size_t encoding_bytes = 0;
        for (const auto& cert : hermes_protocol->shared()->certificates) {
          encoding_bytes += cert.encoded.size() + cert.signature.size();
        }
        // Every node receives all k encodings once per view change.
        tree_dissemination_kb = static_cast<double>(encoding_bytes) / 1024.0;
      }
    }
    std::printf("%-26s %14.1f\n", entry.name, kb_per_min.mean());
    if (std::string(entry.name) == "hermes") hermes_kb_min = kb_per_min.mean();
  }

  std::printf("%-26s %14.1f  (tree encodings: %.1f KB per node per view change)\n",
              "hermes (per view change)", hermes_kb_min + tree_dissemination_kb,
              tree_dissemination_kb);
  return 0;
}
