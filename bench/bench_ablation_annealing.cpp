// Ablation: what the offline optimization pipeline buys (Section V).
//
// Three levers are toggled independently:
//   - role rotation (rank accumulation across trees, Section V-B): without
//     it every tree elects the same entry points and the same near-root
//     nodes — the systematic advantage front-runners need;
//   - simulated annealing (Algorithms 2/3): prunes redundant biclique
//     links and lowers dissemination latency, while enforcing the f+1
//     successor rule of Algorithm 3 step 2;
//   - the rank penalty inside the objective (Equation 1): extra pressure
//     against re-favoring already-favored nodes during optimization.
#include <cstdio>

#include "bench/common.hpp"
#include "overlay/builder.hpp"
#include "overlay/families.hpp"
#include "overlay/roles.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  const auto opt = bench::Options::parse(argc, argv, /*default_nodes=*/150);
  const std::size_t k = 6, f = 1;

  std::printf(
      "Ablation — rotation, annealing, rank penalty (N=%zu, k=%zu, f=%zu, %zu "
      "reps)\n",
      opt.nodes, k, f, opt.reps);
  std::printf("%-34s %8s %10s %10s %12s %10s\n", "variant", "edges",
              "flood ms", "depth-sd", "max entry x", "entry set");

  struct Variant {
    const char* name;
    bool rotate;
    bool optimize;
    double rank_weight;
  };
  const Variant variants[] = {
      {"no rotation, raw trees", false, false, 0.0},
      {"rotation, raw trees", true, false, 0.0},
      {"rotation + annealing, no penalty", true, true, 0.0},
      {"rotation + annealing + penalty", true, true, 2.0},
  };

  for (const Variant& variant : variants) {
    RunningStats edges, flood, fairness, max_entry, entry_nodes;
    for (std::size_t rep = 0; rep < opt.reps; ++rep) {
      const net::Topology topo =
          bench::make_bench_topology(opt.nodes, opt.seed + rep);
      overlay::BuilderParams params;
      params.f = f;
      params.k = k;
      params.rotate_roles = variant.rotate;
      params.optimize = variant.optimize;
      params.annealing = bench::bench_hermes_config().builder.annealing;
      params.annealing.weights.rank = variant.rank_weight;
      Rng rng(opt.seed + rep);
      const auto set = overlay::build_overlay_set(topo.graph, params, rng);

      double edge_sum = 0.0, flood_sum = 0.0;
      for (const auto& ov : set.overlays) {
        edge_sum += static_cast<double>(ov.edge_count());
        flood_sum += overlay::measure_overlay_flood(ov).avg_latency;
      }
      edges.add(edge_sum / static_cast<double>(k));
      flood.add(flood_sum / static_cast<double>(k));
      const auto fair = overlay::fairness_metrics(set.overlays);
      fairness.add(fair.mean_depth_stddev);
      max_entry.add(static_cast<double>(fair.max_entry_appearances));
      const auto dist = overlay::role_distribution(set.overlays);
      std::size_t distinct = 0;
      for (net::NodeId v = 0; v < opt.nodes; ++v) {
        if (dist.entry_appearances(v) > 0) ++distinct;
      }
      entry_nodes.add(static_cast<double>(distinct));
    }
    std::printf("%-34s %8.1f %10.2f %10.3f %12.1f %10.1f\n", variant.name,
                edges.mean(), flood.mean(), fairness.mean(), max_entry.mean(),
                entry_nodes.mean());
  }
  std::printf(
      "\n(depth-sd: stddev across nodes of mean depth over the k overlays — "
      "lower is fairer; max entry x: worst-case entry-slot repetition, k "
      "means one clique owns the roots; entry set: distinct entry nodes out "
      "of %zu slots)\n",
      k * (f + 1));
  return 0;
}
