// Ablation: the TRS committee size (3f+1) — what each increment of f costs
// in seed-generation latency and messages, and what it buys in tolerance.
// The committee exchange is O((3f+1)^2) per transaction (Algorithm 4), so
// this is HERMES's main per-transaction protocol constant.
#include <cstdio>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using bench::RunSpec;
  const auto opt = bench::Options::parse(argc, argv, /*default_nodes=*/120);

  std::printf(
      "Ablation — committee size (N=%zu, %zu reps x %zu txs per point)\n",
      opt.nodes, opt.reps, opt.txs);
  std::printf("%4s %10s %14s %16s %14s %12s\n", "f", "committee",
              "TRS wait ms", "TRS msgs/tx", "lat ms", "coverage");

  for (std::size_t f : {1u, 2u, 3u, 4u}) {
    RunningStats trs_wait, latency, coverage, msgs_per_tx;
    for (std::size_t rep = 0; rep < opt.reps; ++rep) {
      RunSpec spec;
      spec.nodes = opt.nodes;
      spec.txs = opt.txs;
      spec.seed = opt.seed + rep;
      // f raises entry-point counts and committee size together (the
      // paper couples them); keep k fixed.
      hermes_proto::HermesProtocol protocol(bench::bench_hermes_config(f, 6));

      // Count TRS traffic separately: request + echo + ready + partial
      // message types (10-13).
      const auto result = bench::run_experiment(protocol, spec);
      trs_wait.add(result.trs_wait_mean_ms);
      latency.add(mean_of(result.latencies));
      coverage.add(result.mean_coverage);
      // Committee protocol: each tx costs ~ (3f+1) requests + 2(3f+1)^2
      // votes + (3f+1) partials; report the analytic figure alongside.
      const double committee = static_cast<double>(3 * f + 1);
      msgs_per_tx.add(committee + 2 * committee * committee + committee);
    }
    std::printf("%4zu %10zu %14.1f %16.0f %14.2f %11.1f%%\n", f, 3 * f + 1,
                trs_wait.mean(), msgs_per_tx.mean(), latency.mean(),
                coverage.mean() * 100.0);
  }
  std::printf("\n(TRS msgs/tx is the protocol constant (3f+1) + 2(3f+1)^2 + "
              "(3f+1); the wait is one Bracha round across WAN latencies and "
              "is pipelined with other transactions)\n");
  return 0;
}
