// Figure 3a: average transaction dissemination latency and its 5th-95th
// percentile band for HERMES, LØ, Narwhal, Mercury.
//
// Paper (N = 10,000): Mercury 77.10 ms < HERMES 83.22 ms < Narwhal
// 106.61 ms < LØ 172.02 ms, with HERMES showing the narrowest band after
// Mercury. Expected shape here: same ordering; absolute numbers depend on
// N and the synthetic latency model (use --nodes 10000 for paper scale).
#include <cstdio>
#include <functional>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using bench::RunSpec;
  const auto opt = bench::Options::parse(argc, argv, /*default_nodes=*/300);

  std::printf("Figure 3a — transaction latency (N=%zu, %zu reps x %zu txs)\n",
              opt.nodes, opt.reps, opt.txs);
  std::printf("%-10s %10s %8s %8s %8s\n", "protocol", "avg ms", "p5", "p50",
              "p95");

  struct Entry {
    const char* name;
    std::function<std::unique_ptr<protocols::Protocol>()> make;
  };
  const Entry entries[] = {
      {"mercury", [] { return std::make_unique<protocols::MercuryProtocol>(); }},
      {"hermes",
       [] {
         return std::make_unique<hermes_proto::HermesProtocol>(
             bench::bench_hermes_config());
       }},
      {"narwhal", [] { return std::make_unique<protocols::NarwhalProtocol>(); }},
      {"l0", [] { return std::make_unique<protocols::L0Protocol>(); }},
  };

  for (const Entry& entry : entries) {
    std::vector<double> all;
    RunningStats trs;
    for (std::size_t rep = 0; rep < opt.reps; ++rep) {
      RunSpec spec;
      spec.nodes = opt.nodes;
      spec.txs = opt.txs;
      spec.seed = opt.seed + rep;
      spec.drain_ms = 6000.0;
      auto protocol = entry.make();
      const auto result = bench::run_experiment(*protocol, spec);
      all.insert(all.end(), result.latencies.begin(), result.latencies.end());
      if (result.trs_wait_mean_ms > 0.0) trs.add(result.trs_wait_mean_ms);
    }
    const Summary s = summarize(std::move(all));
    std::printf("%-10s %10.2f %8.2f %8.2f %8.2f", entry.name, s.mean, s.p5,
                s.p50, s.p95);
    if (trs.count() > 0) {
      std::printf("   (TRS seed round: +%.1f ms before dissemination)",
                  trs.mean());
    }
    std::printf("\n");
  }
  return 0;
}
