// Shared experiment driver for the figure/table benches.
//
// Every bench binary accepts:
//   --nodes N    network size (defaults are CI-friendly; the paper used
//                N = 10,000 for latency/robustness and 200 elsewhere)
//   --reps R     repetitions averaged per data point (paper: 10)
//   --txs T      transactions injected per repetition
//   --seed S     base RNG seed
// and prints a plain-text table matching the corresponding figure.
#pragma once

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "hermes/hermes_node.hpp"
#include "protocols/base.hpp"
#include "protocols/gossip.hpp"
#include "protocols/l0.hpp"
#include "protocols/mercury.hpp"
#include "protocols/narwhal.hpp"
#include "protocols/simple_tree.hpp"
#include "support/stats.hpp"

namespace hermes::bench {

struct Options {
  std::size_t nodes = 200;
  std::size_t reps = 3;
  std::size_t txs = 5;
  std::uint64_t seed = 20250705;

  static Options parse(int argc, char** argv, std::size_t default_nodes = 200) {
    Options opt;
    opt.nodes = default_nodes;
    for (int i = 1; i < argc; ++i) {
      auto grab = [&](const char* flag) -> const char* {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
        return nullptr;
      };
      if (const char* v = grab("--nodes")) opt.nodes = std::stoul(v);
      else if (const char* v2 = grab("--reps")) opt.reps = std::stoul(v2);
      else if (const char* v3 = grab("--txs")) opt.txs = std::stoul(v3);
      else if (const char* v4 = grab("--seed")) opt.seed = std::stoull(v4);
    }
    return opt;
  }
};

inline net::Topology make_bench_topology(std::size_t nodes, std::uint64_t seed) {
  net::TopologyParams tp;
  tp.node_count = nodes;
  tp.min_degree = 6;
  tp.connectivity = 2;
  Rng rng(seed);
  return net::make_topology(tp, rng);
}

// HERMES configured for bench scale: smaller annealing schedule than the
// library default so runs stay CI-friendly. Use --nodes/--reps to scale up.
inline hermes_proto::HermesConfig bench_hermes_config(std::size_t f = 1,
                                                      std::size_t k = 10) {
  hermes_proto::HermesConfig config;
  config.f = f;
  config.k = k;
  config.builder.annealing.initial_temperature = 10.0;
  config.builder.annealing.min_temperature = 1.0;
  config.builder.annealing.cooling_rate = 0.85;
  config.builder.annealing.moves_per_temperature = 6;
  return config;
}

// One experiment run: a fresh world per (protocol, rep), `txs` transactions
// injected from random honest senders, run until quiescence horizon.
struct RunResult {
  std::vector<double> latencies;       // all (tx, node) first-delivery lats
  double mean_coverage = 0.0;          // honest coverage averaged over txs
  double attack_success_rate = 0.0;    // over attacked victims
  std::uint64_t total_bytes_sent = 0;
  std::uint64_t total_messages = 0;
  double sim_duration_ms = 0.0;
  std::vector<double> per_node_sent_msgs;
  // HERMES only: mean TRS round-trip before dissemination starts (the
  // latency columns measure propagation of m, per the paper; this reports
  // the seed-generation cost separately).
  double trs_wait_mean_ms = 0.0;
};

struct RunSpec {
  std::size_t nodes = 200;
  std::size_t txs = 5;
  std::uint64_t seed = 1;
  double byzantine_fraction = 0.0;
  protocols::Behavior byzantine_behavior = protocols::Behavior::kDropper;
  bool attack = false;
  double inter_tx_gap_ms = 200.0;
  double drain_ms = 4000.0;
  sim::NetworkParams net_params = {};
};

inline RunResult run_experiment(protocols::Protocol& protocol,
                                const RunSpec& spec) {
  protocols::ExperimentContext ctx(make_bench_topology(spec.nodes, spec.seed),
                                   spec.net_params, spec.seed ^ 0x5eedULL);
  if (spec.byzantine_fraction > 0.0) {
    ctx.assign_behaviors(spec.byzantine_fraction, spec.byzantine_behavior);
  }
  ctx.attack_enabled = spec.attack;
  protocols::populate(ctx, protocol);

  Rng workload(spec.seed ^ 0x770a1cULL);
  std::vector<mempool::Transaction> txs;
  for (std::size_t i = 0; i < spec.txs; ++i) {
    txs.push_back(protocols::inject_tx(ctx, ctx.random_honest(workload)));
    ctx.engine.run_until(ctx.engine.now() + spec.inter_tx_gap_ms);
  }
  ctx.engine.run_until(ctx.engine.now() + spec.drain_ms);

  RunResult result;
  result.sim_duration_ms = ctx.engine.now();
  std::size_t attacked = 0, succeeded = 0;
  Rng judge(spec.seed ^ 0x1d93eULL);
  for (const auto& tx : txs) {
    for (double l : ctx.tracker.latencies(tx.id)) result.latencies.push_back(l);
    result.mean_coverage += protocols::honest_coverage(ctx, tx);
    const protocols::AttackOutcome outcome =
        protocols::front_run_outcome(ctx, tx, judge);
    if (outcome != protocols::AttackOutcome::kNoAttack) {
      ++attacked;
      if (outcome == protocols::AttackOutcome::kSucceeded) ++succeeded;
    }
  }
  result.mean_coverage /= static_cast<double>(txs.size());
  result.attack_success_rate =
      attacked == 0 ? 0.0
                    : static_cast<double>(succeeded) / static_cast<double>(attacked);
  result.total_bytes_sent = ctx.network.total().bytes_sent;
  result.total_messages = ctx.network.total().messages_sent;
  for (net::NodeId v = 0; v < ctx.node_count(); ++v) {
    result.per_node_sent_msgs.push_back(
        static_cast<double>(ctx.network.counters(v).messages_sent));
  }
  RunningStats trs;
  for (net::NodeId v = 0; v < ctx.node_count(); ++v) {
    if (const auto* node =
            dynamic_cast<const hermes_proto::HermesNode*>(&ctx.node(v))) {
      if (node->trs_wait_ms().count() > 0) trs.add(node->trs_wait_ms().mean());
    }
  }
  result.trs_wait_mean_ms = trs.mean();
  return result;
}

}  // namespace hermes::bench
