// Ablation: erasure-coded batch dissemination (Section VIII-D extension).
// Compares sending B transactions individually vs as one coded batch
// (batch_data_chunks + f shards over distinct overlays): bytes on the
// wire, messages, delivery latency, and robustness of the coded stream.
#include <cstdio>

#include "bench/common.hpp"

namespace {

using namespace hermes;
using namespace hermes::protocols;

struct BatchRun {
  double kib = 0.0;
  double messages = 0.0;
  double latency_ms = 0.0;
  double coverage = 0.0;
};

std::vector<Transaction> make_member_txs(ExperimentContext& ctx,
                                         net::NodeId sender, std::size_t count,
                                         std::uint64_t* member_seq) {
  std::vector<Transaction> txs;
  for (std::size_t i = 0; i < count; ++i) {
    Transaction tx;
    tx.sender = sender;
    tx.sender_seq = ++*member_seq;
    tx.id = mempool::Transaction::make_id(sender, tx.sender_seq);
    tx.created_at = ctx.engine.now();
    ctx.tracker.on_created(tx.id, tx.created_at);
    txs.push_back(tx);
  }
  return txs;
}

BatchRun run(std::size_t nodes, std::size_t batch, bool batched,
             std::uint64_t seed) {
  ExperimentContext ctx(bench::make_bench_topology(nodes, seed),
                        sim::NetworkParams{}, seed);
  hermes_proto::HermesProtocol protocol(bench::bench_hermes_config(1, 6));
  populate(ctx, protocol);
  auto* sender = dynamic_cast<hermes_proto::HermesNode*>(&ctx.node(2));

  std::vector<Transaction> txs;
  if (batched) {
    std::uint64_t member_seq = 0x900000;
    txs = make_member_txs(ctx, 2, batch, &member_seq);
    sender->submit_batch(txs);
  } else {
    for (std::size_t i = 0; i < batch; ++i) {
      txs.push_back(inject_tx(ctx, 2));
      ctx.engine.run_until(ctx.engine.now() + 30.0);
    }
  }
  ctx.engine.run_until(ctx.engine.now() + 8000.0);

  BatchRun result;
  result.kib = static_cast<double>(ctx.network.total().bytes_sent) / 1024.0;
  result.messages = static_cast<double>(ctx.network.total().messages_sent);
  std::vector<double> lats;
  for (const auto& tx : txs) {
    result.coverage += honest_coverage(ctx, tx);
    for (double l : ctx.tracker.latencies(tx.id)) lats.push_back(l);
  }
  result.coverage /= static_cast<double>(txs.size());
  result.latency_ms = mean_of(lats);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = hermes::bench::Options::parse(argc, argv, 100);
  std::printf(
      "Ablation — erasure-coded batching (N=%zu, data chunks=3, parity=f=1)\n",
      opt.nodes);
  std::printf("%-22s %6s %10s %10s %10s %9s\n", "mode", "txs", "KiB", "msgs",
              "lat ms", "coverage");
  for (std::size_t batch : {4u, 16u, 64u}) {
    const BatchRun plain = run(opt.nodes, batch, false, opt.seed);
    const BatchRun coded = run(opt.nodes, batch, true, opt.seed);
    std::printf("%-22s %6zu %10.1f %10.0f %10.1f %8.1f%%\n", "one-by-one",
                batch, plain.kib, plain.messages, plain.latency_ms,
                plain.coverage * 100.0);
    std::printf("%-22s %6zu %10.1f %10.0f %10.1f %8.1f%%\n",
                "coded batch (Sec 8-D)", batch, coded.kib, coded.messages,
                coded.latency_ms, coded.coverage * 100.0);
  }
  std::printf("\n(one coded batch = one TRS round and shards of ~1/3 batch "
              "size per overlay; savings grow with the batch)\n");
  return 0;
}
