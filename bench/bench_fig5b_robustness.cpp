// Figure 5b: probability for a message to be received by honest nodes as a
// function of the fraction of Byzantine (dropping) nodes, for HERMES, LØ,
// Narwhal, Mercury, on top of a stochastically lossy network.
//
// Paper (N = 10,000): HERMES 99.9% -> 95%, LØ 97.5% -> 80%, Narwhal
// 95% -> 79%, Mercury 89% -> 55%. Expected shape here: same ordering,
// HERMES flattest and Mercury steepest.
#include <cstdio>
#include <functional>

#include "bench/common.hpp"
#include "hermes/fault_density.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using bench::RunSpec;
  auto opt = bench::Options::parse(argc, argv, /*default_nodes=*/150);

  std::printf(
      "Figure 5b — delivery probability under Byzantine droppers "
      "(N=%zu, %zu reps x %zu txs, 12%% link loss)\n",
      opt.nodes, opt.reps, opt.txs);
  std::printf("%-10s", "malicious");
  const double fractions[] = {0.10, 0.15, 0.20, 0.25, 0.30, 0.33};
  for (double fr : fractions) std::printf(" %7.0f%%", fr * 100.0);
  std::printf("\n");

  struct Entry {
    const char* name;
    std::function<std::unique_ptr<protocols::Protocol>()> make;
  };
  const Entry entries[] = {
      {"hermes",
       [] {
         return std::make_unique<hermes_proto::HermesProtocol>(
             bench::bench_hermes_config());
       }},
      {"l0", [] { return std::make_unique<protocols::L0Protocol>(); }},
      {"narwhal", [] { return std::make_unique<protocols::NarwhalProtocol>(); }},
      {"mercury", [] { return std::make_unique<protocols::MercuryProtocol>(); }},
  };

  // Annotate whether the fault-density assumption (Section III) holds at
  // each fraction for a representative assignment (radius 1).
  {
    std::printf("%-10s", "density*");
    for (double fraction : fractions) {
      protocols::ExperimentContext probe(
          bench::make_bench_topology(opt.nodes, opt.seed), {}, opt.seed);
      probe.assign_behaviors(fraction, protocols::Behavior::kDropper);
      std::vector<bool> faulty(opt.nodes);
      for (net::NodeId v = 0; v < opt.nodes; ++v) {
        faulty[v] = !probe.is_honest(v);
      }
      const auto density = hermes_proto::check_fault_density(
          probe.topology.graph, faulty, 1, 1);
      std::printf(" %7s%%", density.holds ? "ok" : "viol");
    }
    std::printf("   (*f=1 fault-density at radius 1; 'viol' = fallback "
                "territory)\n");
  }

  for (const Entry& entry : entries) {
    std::printf("%-10s", entry.name);
    for (double fraction : fractions) {
      RunningStats coverage;
      for (std::size_t rep = 0; rep < opt.reps; ++rep) {
        RunSpec spec;
        spec.nodes = opt.nodes;
        spec.txs = opt.txs;
        spec.seed = opt.seed + rep * 1000 +
                    static_cast<std::uint64_t>(fraction * 100);
        spec.byzantine_fraction = fraction;
        spec.byzantine_behavior = protocols::Behavior::kDropper;
        spec.net_params.drop_probability = 0.12;
        spec.inter_tx_gap_ms = 400.0;
        // Fixed observation window: a transaction counts as received only
        // if it arrived within 4 s of creation (eventual repair beyond the
        // window does not help a mempool that must fill the next block).
        spec.drain_ms = 4000.0;
        auto protocol = entry.make();
        const auto result = bench::run_experiment(*protocol, spec);
        coverage.add(result.mean_coverage);
      }
      std::printf(" %7.1f%%", coverage.mean() * 100.0);
    }
    std::printf("\n");
  }
  return 0;
}
