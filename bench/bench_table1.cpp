// Table I: comparison of transaction dissemination approaches — gossip,
// reliable broadcast (Narwhal as the representative), simple fixed tree,
// and HERMES (optimized robust trees) — with the qualitative cells of the
// paper's table replaced by measured proxies:
//   latency        -> mean first-delivery latency (ms)
//   msg complexity -> messages sent per transaction per node
//   load balance   -> stddev of per-node messages sent
//   robustness     -> honest coverage with 20% droppers + 5% link loss
//   fairness       -> front-running success rate with 25% front-runners
#include <cstdio>
#include <functional>

#include "bench/common.hpp"
#include "protocols/brb.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using bench::RunSpec;
  const auto opt = bench::Options::parse(argc, argv, /*default_nodes=*/120);

  struct Entry {
    const char* name;
    std::function<std::unique_ptr<protocols::Protocol>()> make;
  };
  const Entry entries[] = {
      {"gossip", [] { return std::make_unique<protocols::GossipProtocol>(); }},
      {"reliable-bcast",
       [] { return std::make_unique<protocols::BrbProtocol>(); }},
      {"simple-tree",
       [] { return std::make_unique<protocols::SimpleTreeProtocol>(); }},
      {"hermes",
       [] {
         return std::make_unique<hermes_proto::HermesProtocol>(
             bench::bench_hermes_config());
       }},
  };

  std::printf("Table I — dissemination approaches, measured (N=%zu, %zu reps)\n",
              opt.nodes, opt.reps);
  std::printf("%-15s %10s %10s %10s %11s %10s\n", "approach", "lat ms",
              "msg/tx/nd", "load sd", "robust %", "frontrun %");

  for (const Entry& entry : entries) {
    RunningStats latency, msgs, load_sd, robust, frontrun;
    for (std::size_t rep = 0; rep < opt.reps; ++rep) {
      // Clean run: latency + message complexity + load balance.
      {
        RunSpec spec;
        spec.nodes = opt.nodes;
        spec.txs = opt.txs;
        spec.seed = opt.seed + rep;
        auto protocol = entry.make();
        const auto r = bench::run_experiment(*protocol, spec);
        latency.add(mean_of(r.latencies));
        msgs.add(static_cast<double>(r.total_messages) /
                 static_cast<double>(opt.txs) / static_cast<double>(opt.nodes));
        load_sd.add(stddev_of(r.per_node_sent_msgs));
      }
      // Fault run: robustness.
      {
        RunSpec spec;
        spec.nodes = opt.nodes;
        spec.txs = opt.txs;
        spec.seed = opt.seed + 31 + rep;
        spec.byzantine_fraction = 0.20;
        spec.byzantine_behavior = protocols::Behavior::kDropper;
        spec.net_params.drop_probability = 0.05;
        spec.drain_ms = 8000.0;
        auto protocol = entry.make();
        robust.add(bench::run_experiment(*protocol, spec).mean_coverage);
      }
      // Adversarial run: dissemination fairness.
      {
        RunSpec spec;
        spec.nodes = opt.nodes;
        spec.txs = std::max<std::size_t>(opt.txs, 6);
        spec.seed = opt.seed + 71 + rep;
        spec.byzantine_fraction = 0.25;
        spec.byzantine_behavior = protocols::Behavior::kFrontRunner;
        spec.attack = true;
        spec.drain_ms = 6000.0;
        auto protocol = entry.make();
        frontrun.add(bench::run_experiment(*protocol, spec).attack_success_rate);
      }
    }
    std::printf("%-15s %10.2f %10.2f %10.2f %10.1f%% %9.1f%%\n", entry.name,
                latency.mean(), msgs.mean(), load_sd.mean(),
                robust.mean() * 100.0, frontrun.mean() * 100.0);
  }
  return 0;
}
