// Ablation: the number of overlays k. The paper argues (Sections IV, V)
// that larger k costs bandwidth but buys lower average latency variance and
// higher dissemination fairness. This bench sweeps k and reports latency,
// bandwidth, fairness of the overlay set, and front-running success.
#include <cstdio>

#include "bench/common.hpp"
#include "overlay/encoding.hpp"
#include "overlay/roles.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using bench::RunSpec;
  const auto opt = bench::Options::parse(argc, argv, /*default_nodes=*/120);

  std::printf("Ablation — number of overlays k (N=%zu, %zu reps)\n", opt.nodes,
              opt.reps);
  std::printf("%4s %10s %10s %12s %14s %14s %12s\n", "k", "lat ms", "lat sd",
              "KB/min/node", "view-chg KiB", "depth-sd (fair)", "frontrun %");

  for (std::size_t k : {1u, 2u, 5u, 10u, 20u}) {
    RunningStats latency, latency_sd, kb, frontrun;
    double fairness = 0.0;
    double encoding_kib = 0.0;
    for (std::size_t rep = 0; rep < opt.reps; ++rep) {
      {
        RunSpec spec;
        spec.nodes = opt.nodes;
        spec.txs = opt.txs;
        spec.seed = opt.seed + rep;
        hermes_proto::HermesProtocol protocol(bench::bench_hermes_config(1, k));
        const auto r = bench::run_experiment(protocol, spec);
        latency.add(mean_of(r.latencies));
        latency_sd.add(stddev_of(r.latencies));
        const double minutes = r.sim_duration_ms / 60'000.0;
        kb.add(static_cast<double>(r.total_bytes_sent) / 1024.0 / minutes /
               static_cast<double>(opt.nodes));
        if (rep == 0) {
          fairness = overlay::fairness_metrics(protocol.shared()->overlays)
                         .mean_depth_stddev;
          std::size_t bytes = 0;
          for (const auto& cert : protocol.shared()->certificates) {
            bytes += cert.encoded.size() + cert.signature.size();
          }
          encoding_kib = static_cast<double>(bytes) / 1024.0;
        }
      }
      {
        RunSpec spec;
        spec.nodes = opt.nodes;
        spec.txs = std::max<std::size_t>(opt.txs, 6);
        spec.seed = opt.seed + 100 + rep;
        spec.byzantine_fraction = 0.30;
        spec.byzantine_behavior = protocols::Behavior::kFrontRunner;
        spec.attack = true;
        spec.drain_ms = 6000.0;
        hermes_proto::HermesProtocol protocol(bench::bench_hermes_config(1, k));
        frontrun.add(bench::run_experiment(protocol, spec).attack_success_rate);
      }
    }
    std::printf("%4zu %10.2f %10.2f %12.1f %14.1f %14.3f %11.1f%%\n", k,
                latency.mean(), latency_sd.mean(), kb.mean(), encoding_kib,
                fairness, frontrun.mean() * 100.0);
  }
  return 0;
}
